package container

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

func fastOpts(c *cluster.Cluster, d sharedfs.Drive) Options {
	return Options{
		Cluster:           c,
		Drive:             d,
		TimeScale:         0.002,
		InputWait:         2,
		PodOverheadMem:    10 << 20,
		WorkerOverheadMem: 1 << 20,
		PodOverheadCPU:    0.01,
	}
}

func startRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	rt, err := NewRuntime(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	return rt
}

func benchReq(name string, work float64) *wfbench.Request {
	return &wfbench.Request{
		Name:       name,
		PercentCPU: 0.9,
		CPUWork:    work,
		MemBytes:   4 << 20,
		Out:        map[string]int64{name + "_out": 10},
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Name: "c", Workers: 1}, true},
		{Config{Name: "", Workers: 1}, false},
		{Config{Name: "a b", Workers: 1}, false},
		{Config{Name: "c", Workers: 0}, false},
		{Config{Name: "c", Workers: 1, CPUs: -1}, false},
		{Config{Name: "c", Workers: 1, MemLimit: -1}, false},
	}
	for i, c := range cases {
		if err := c.cfg.validate(); (err == nil) != c.ok {
			t.Errorf("case %d: err=%v want ok=%v", i, err, c.ok)
		}
	}
}

func TestRunAndInvoke(t *testing.T) {
	cl := cluster.PaperTestbed()
	rt := startRuntime(t, fastOpts(cl, sharedfs.NewMem()))
	c, err := rt.Run(Config{Name: "wfbench", Workers: 4, CPUs: 2, MemLimit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.Invoke(context.Background(), "wfbench", benchReq("f1", 50))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Pod != "wfbench" {
		t.Fatalf("resp = %+v", resp)
	}
	if c.Served() != 1 {
		t.Fatalf("served = %d", c.Served())
	}
	// container reserves for its whole lifetime
	if got := cl.Snapshot().ReservedCores; got != 2 {
		t.Fatalf("ReservedCores = %v, want 2", got)
	}
}

func TestReservationHeldUntilRemove(t *testing.T) {
	cl := cluster.PaperTestbed()
	rt := startRuntime(t, fastOpts(cl, sharedfs.NewMem()))
	if _, err := rt.Run(Config{Name: "c1", Workers: 2, CPUs: 4, MemLimit: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	u := cl.Snapshot()
	if u.ReservedCores != 4 || u.ReservedMem != 1<<30 {
		t.Fatalf("reservation missing: %+v", u)
	}
	// base overhead resident while idle: 10MB + 2x1MB workers
	if u.UsedMem != 12<<20 {
		t.Fatalf("UsedMem = %d, want 12MB overhead", u.UsedMem)
	}
	rt.Remove("c1")
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		u = cl.Snapshot()
		if u.ReservedCores == 0 && u.UsedMem == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("Remove leaked resources: %+v", u)
}

func TestDuplicateName(t *testing.T) {
	rt := startRuntime(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if _, err := rt.Run(Config{Name: "c", Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(Config{Name: "c", Workers: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestNoCRReservesNothing(t *testing.T) {
	cl := cluster.PaperTestbed()
	rt := startRuntime(t, fastOpts(cl, sharedfs.NewMem()))
	if _, err := rt.Run(Config{Name: "nocr", Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if got := cl.Snapshot().ReservedCores; got != 0 {
		t.Fatalf("NoCR reserved %v cores", got)
	}
	// Unlimited memory: a huge ballast request is admitted.
	big := benchReq("big", 10)
	big.MemBytes = 8 << 30
	if _, err := rt.Invoke(context.Background(), "nocr", big); err != nil {
		t.Fatal(err)
	}
}

func TestMemLimitOOM(t *testing.T) {
	cl := cluster.PaperTestbed()
	rt := startRuntime(t, fastOpts(cl, sharedfs.NewMem()))
	// limit: 16MB; base overhead is 10+1 = 11MB, so a 6MB ballast
	// exceeds it.
	if _, err := rt.Run(Config{Name: "tight", Workers: 1, MemLimit: 16 << 20}); err != nil {
		t.Fatal(err)
	}
	req := benchReq("oom", 10)
	req.MemBytes = 6 << 20
	_, err := rt.Invoke(context.Background(), "tight", req)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	if rt.OOMs() != 1 {
		t.Fatalf("OOMs = %d", rt.OOMs())
	}
	// A small request still fits.
	small := benchReq("ok", 10)
	small.MemBytes = 1 << 20
	if _, err := rt.Invoke(context.Background(), "tight", small); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerPoolExceedsLimitRejected(t *testing.T) {
	rt := startRuntime(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	// 10MB base + 10 workers x 1MB = 20MB > 15MB limit.
	if _, err := rt.Run(Config{Name: "c", Workers: 10, MemLimit: 15 << 20}); !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestRoundRobinDispatch(t *testing.T) {
	cl := cluster.PaperTestbed()
	rt := startRuntime(t, fastOpts(cl, sharedfs.NewMem()))
	for i := 0; i < 3; i++ {
		if _, err := rt.Run(Config{Name: fmt.Sprintf("c%d", i), Workers: 2}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rt.Invoke(context.Background(), "", benchReq(fmt.Sprintf("f%d", i), 100)); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}(i)
	}
	wg.Wait()
	// All containers should have shared the load.
	for _, c := range rt.Containers() {
		if c.Served() == 0 {
			t.Fatalf("container %s served nothing", c.Name())
		}
	}
	if rt.Requests() != 12 {
		t.Fatalf("requests = %d", rt.Requests())
	}
}

func TestInvokeNoContainers(t *testing.T) {
	rt := startRuntime(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if _, err := rt.Invoke(context.Background(), "", benchReq("f", 1)); err == nil {
		t.Fatal("invoke with no containers succeeded")
	}
	if _, err := rt.Invoke(context.Background(), "ghost", benchReq("f", 1)); err == nil {
		t.Fatal("unknown container accepted")
	}
}

func TestPMBallastPersistsForRunLifetime(t *testing.T) {
	cl := cluster.PaperTestbed()
	rt := startRuntime(t, fastOpts(cl, sharedfs.NewMem()))
	c, err := rt.Run(Config{Name: "pm", Workers: 1, KeepMem: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(context.Background(), "pm", benchReq("f1", 10)); err != nil {
		t.Fatal(err)
	}
	// 11MB overhead + 4MB kept ballast
	if got := c.MemUsed(); got != 15<<20 {
		t.Fatalf("MemUsed = %d, want 15MB", got)
	}
	// NoPM counterpart drops back to overhead after each call.
	c2, err := rt.Run(Config{Name: "nopm", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Invoke(context.Background(), "nopm", benchReq("f2", 10)); err != nil {
		t.Fatal(err)
	}
	if got := c2.MemUsed(); got != 11<<20 {
		t.Fatalf("NoPM MemUsed = %d, want 11MB", got)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	drive := sharedfs.NewMem()
	rt := startRuntime(t, fastOpts(cluster.PaperTestbed(), drive))
	if _, err := rt.Run(Config{Name: "wfbench", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	url := rt.URL()

	hr, _ := http.Get(url + "/healthz")
	if hr.StatusCode != 200 {
		t.Fatalf("healthz = %d", hr.StatusCode)
	}
	hr.Body.Close()

	// named route
	body, _ := json.Marshal(benchReq("n1", 20))
	pr, err := http.Post(url+"/wfbench/wfbench", "application/json", bytes.NewReader(body))
	if err != nil || pr.StatusCode != 200 {
		t.Fatalf("named route: %v %v", pr.StatusCode, err)
	}
	pr.Body.Close()

	// least-loaded route, matching the paper's curl localhost:80/wfbench
	body2, _ := json.Marshal(benchReq("n2", 20))
	pr2, err := http.Post(url+"/wfbench", "application/json", bytes.NewReader(body2))
	if err != nil || pr2.StatusCode != 200 {
		t.Fatalf("root route: %v %v", pr2.StatusCode, err)
	}
	pr2.Body.Close()
	if !drive.Exists("n1_out") || !drive.Exists("n2_out") {
		t.Fatal("outputs missing")
	}

	// error paths
	r3, _ := http.Post(url+"/wfbench", "application/json", bytes.NewReader([]byte("{")))
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body = %d", r3.StatusCode)
	}
	r3.Body.Close()
	r4, _ := http.Get(url + "/wfbench")
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("GET = %d", r4.StatusCode)
	}
	r4.Body.Close()
	r5, _ := http.Post(url+"/a/b/c", "application/json", bytes.NewReader(body))
	if r5.StatusCode != http.StatusNotFound {
		t.Fatalf("deep path = %d", r5.StatusCode)
	}
	r5.Body.Close()
}

func TestWorkerPoolBoundsParallelism(t *testing.T) {
	cl := cluster.PaperTestbed()
	opts := fastOpts(cl, sharedfs.NewMem())
	opts.TimeScale = 0.02
	rt := startRuntime(t, opts)
	if _, err := rt.Run(Config{Name: "c", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt.Invoke(context.Background(), "c", benchReq(fmt.Sprintf("f%d", i), 100))
		}(i)
	}
	wg.Wait()
	// 6 requests of ~22ms wall (1.11 nominal * 0.02) through 2 workers
	// need >= 3 serial rounds ~= 66ms.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("6 tasks on 2 workers finished in %v; pool not limiting", elapsed)
	}
}

func TestStopIdempotentAndReleases(t *testing.T) {
	cl := cluster.PaperTestbed()
	rt := startRuntime(t, fastOpts(cl, sharedfs.NewMem()))
	if _, err := rt.Run(Config{Name: "a", Workers: 3, CPUs: 1}); err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	rt.Stop()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		u := cl.Snapshot()
		if u.ReservedCores == 0 && u.UsedMem == 0 && u.BusyCores == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	u := cl.Snapshot()
	if u.ReservedCores != 0 || u.UsedMem != 0 {
		t.Fatalf("Stop leaked: %+v", u)
	}
	if _, err := rt.Run(Config{Name: "b", Workers: 1}); err == nil {
		t.Fatal("Run after Stop accepted")
	}
}
