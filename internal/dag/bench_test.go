package dag

import (
	"fmt"
	"math/rand"
	"testing"
)

// layeredGraph builds a DAG of the given layer count and width, each
// vertex depending on two vertices of the previous layer.
func layeredGraph(layers, width int) *Graph {
	g := New()
	r := rand.New(rand.NewSource(1))
	var prev []string
	for l := 0; l < layers; l++ {
		var cur []string
		for i := 0; i < width; i++ {
			v := fmt.Sprintf("v%d_%d", l, i)
			g.AddVertex(v)
			for k := 0; k < 2 && len(prev) > 0; k++ {
				g.AddEdge(prev[r.Intn(len(prev))], v)
			}
			cur = append(cur, v)
		}
		prev = cur
	}
	return g
}

func BenchmarkTopoSort(b *testing.B) {
	g := layeredGraph(20, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLevels(b *testing.B) {
	g := layeredGraph(20, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Levels(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	g := layeredGraph(20, 50)
	w := make(map[string]float64, g.Len())
	for _, v := range g.Vertices() {
		w[v] = float64(len(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.CriticalPath(w); err != nil {
			b.Fatal(err)
		}
	}
}
