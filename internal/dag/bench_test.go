package dag

import (
	"fmt"
	"math/rand"
	"testing"
)

// layeredGraph builds a DAG of the given layer count and width, each
// vertex depending on two vertices of the previous layer.
func layeredGraph(layers, width int) *Graph {
	g := New()
	r := rand.New(rand.NewSource(1))
	var prev []string
	for l := 0; l < layers; l++ {
		var cur []string
		for i := 0; i < width; i++ {
			v := fmt.Sprintf("v%d_%d", l, i)
			g.AddVertex(v)
			for k := 0; k < 2 && len(prev) > 0; k++ {
				g.AddEdge(prev[r.Intn(len(prev))], v)
			}
			cur = append(cur, v)
		}
		prev = cur
	}
	return g
}

func BenchmarkTopoSort(b *testing.B) {
	g := layeredGraph(20, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLevels(b *testing.B) {
	g := layeredGraph(20, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Levels(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerDrain measures incremental readiness tracking: one
// NewScheduler plus a Complete per vertex — O(V+E) total.
func BenchmarkSchedulerDrain(b *testing.B) {
	g := layeredGraph(20, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewScheduler(g)
		if err != nil {
			b.Fatal(err)
		}
		frontier := s.TakeReady()
		for len(frontier) > 0 {
			var next []string
			for _, v := range frontier {
				newly, err := s.Complete(v)
				if err != nil {
					b.Fatal(err)
				}
				next = append(next, newly...)
			}
			frontier = next
		}
		if !s.Done() {
			b.Fatal("not drained")
		}
	}
}

// BenchmarkLevelsRederivePerCompletion is the naive alternative the
// Scheduler replaces: re-deriving the level structure after every
// completion, O(V*(V+E)) for a whole run.
func BenchmarkLevelsRederivePerCompletion(b *testing.B) {
	g := layeredGraph(20, 50)
	n := g.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j += 50 { // one re-derivation per "wave"
			if _, err := g.Levels(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	g := layeredGraph(20, 50)
	w := make(map[string]float64, g.Len())
	for _, v := range g.Vertices() {
		w[v] = float64(len(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.CriticalPath(w); err != nil {
			b.Fatal(err)
		}
	}
}
