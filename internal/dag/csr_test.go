package dag

import (
	"reflect"
	"testing"
)

func TestCSRMatchesGraph(t *testing.T) {
	g := layeredGraph(6, 8)
	c, err := BuildCSR(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != g.Len() || c.EdgeCount() != g.EdgeCount() {
		t.Fatalf("CSR %d/%d vs Graph %d/%d", c.Len(), c.EdgeCount(), g.Len(), g.EdgeCount())
	}
	// Every vertex's adjacency must agree with the string graph.
	for _, v := range g.Vertices() {
		id, ok := c.ID(v)
		if !ok {
			t.Fatalf("vertex %q not interned", v)
		}
		if got := c.Name(id); got != v {
			t.Fatalf("Name(%d) = %q, want %q", id, got, v)
		}
		var children []string
		for _, ch := range c.Children(id) {
			children = append(children, c.Name(ch))
		}
		sortStrings(children)
		if want := g.Children(v); !sameStrings(children, want) {
			t.Fatalf("%s children = %v, want %v", v, children, want)
		}
		var parents []string
		for _, p := range c.Parents(id) {
			parents = append(parents, c.Name(p))
		}
		sortStrings(parents)
		if want := g.Parents(v); !sameStrings(parents, want) {
			t.Fatalf("%s parents = %v, want %v", v, parents, want)
		}
		if c.InDegree(id) != g.InDegree(v) || c.OutDegree(id) != g.OutDegree(v) {
			t.Fatalf("%s degrees disagree", v)
		}
	}
}

func TestCSRLevelsMatchGraphLevels(t *testing.T) {
	g := layeredGraph(5, 7)
	c, err := BuildCSR(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.LevelOf()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Vertices() {
		id, _ := c.ID(v)
		if int(c.Level(id)) != want[v] {
			t.Fatalf("%s level = %d, want %d", v, c.Level(id), want[v])
		}
	}
	gl, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLevels() != len(gl) {
		t.Fatalf("NumLevels = %d, want %d", c.NumLevels(), len(gl))
	}
	slices := c.LevelSlices()
	if len(slices) != len(gl) {
		t.Fatalf("LevelSlices = %d levels, want %d", len(slices), len(gl))
	}
	for i, ids := range slices {
		var names []string
		for _, id := range ids {
			names = append(names, c.Name(id))
		}
		sortStrings(names)
		if !sameStrings(names, gl[i]) {
			t.Fatalf("level %d = %v, want %v", i, names, gl[i])
		}
	}
}

func TestCSRTopoOrderRespectsEdges(t *testing.T) {
	g := layeredGraph(6, 6)
	c, err := BuildCSR(g)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, c.Len())
	for i, id := range c.TopoOrder() {
		pos[id] = i
	}
	if len(c.TopoOrder()) != c.Len() {
		t.Fatalf("topo covers %d of %d", len(c.TopoOrder()), c.Len())
	}
	for v := int32(0); v < int32(c.Len()); v++ {
		for _, ch := range c.Children(v) {
			if pos[v] >= pos[ch] {
				t.Fatalf("edge %s->%s violates topo order", c.Name(v), c.Name(ch))
			}
		}
	}
}

func TestCSRBuilderRejectsSelfEdge(t *testing.T) {
	b := NewCSRBuilder(1, 1)
	if err := b.AddEdge("a", "a"); err == nil {
		t.Fatal("self edge accepted")
	}
}

func TestCSRBuilderDetectsCycle(t *testing.T) {
	b := NewCSRBuilder(3, 3)
	b.AddEdge("a", "b")
	b.AddEdge("b", "c")
	b.AddEdge("c", "a")
	_, err := b.Build()
	ce, ok := err.(*CycleError)
	if !ok {
		t.Fatalf("err = %v, want *CycleError", err)
	}
	if len(ce.Cycle) != 3 {
		t.Fatalf("cycle = %v, want 3 vertices", ce.Cycle)
	}
	onCycle := map[string]bool{"a": true, "b": true, "c": true}
	for _, v := range ce.Cycle {
		if !onCycle[v] {
			t.Fatalf("cycle %v names vertex %q outside the cycle", ce.Cycle, v)
		}
	}
}

func TestCSRBuilderCollapsesDuplicateEdges(t *testing.T) {
	b := NewCSRBuilder(2, 4)
	b.AddEdge("a", "b")
	b.AddEdge("a", "b")
	b.AddEdge("a", "b")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", c.EdgeCount())
	}
	id, _ := c.ID("a")
	if got := c.Children(id); len(got) != 1 {
		t.Fatalf("children of a = %v", got)
	}
}

func TestCSREmptyAndSingleton(t *testing.T) {
	c, err := NewCSRBuilder(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.NumLevels() != 0 || len(c.LevelSlices()) != 0 {
		t.Fatalf("empty CSR: len=%d levels=%d", c.Len(), c.NumLevels())
	}
	b := NewCSRBuilder(1, 0)
	b.AddVertex("only")
	c, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || c.NumLevels() != 1 {
		t.Fatalf("singleton CSR: len=%d levels=%d", c.Len(), c.NumLevels())
	}
}

// TestSchedulerIDAPI drives the ID-based hot-path API directly and
// checks it agrees with the string API's partial order.
func TestSchedulerIDAPI(t *testing.T) {
	g := layeredGraph(5, 6)
	c, err := BuildCSR(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedulerCSR(c)
	completed := make([]bool, c.Len())
	frontier := append([]int32(nil), s.TakeReadyIDs()...)
	total := 0
	for len(frontier) > 0 {
		var next []int32
		for _, id := range frontier {
			for _, p := range c.Parents(id) {
				if !completed[p] {
					t.Fatalf("%s ready before parent %s", c.Name(id), c.Name(p))
				}
			}
			newly, err := s.CompleteID(id)
			if err != nil {
				t.Fatal(err)
			}
			completed[id] = true
			total++
			next = append(next, newly...) // copy: newly is scratch
		}
		frontier = next
	}
	if !s.Done() || total != c.Len() {
		t.Fatalf("drained %d of %d, done=%v", total, c.Len(), s.Done())
	}
}

func TestSchedulerFailIDSkipsDescendants(t *testing.T) {
	b := NewCSRBuilder(5, 4)
	b.AddEdge("a", "b")
	b.AddEdge("a", "c")
	b.AddEdge("b", "d")
	b.AddVertex("e")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedulerCSR(c)
	ready := s.TakeReadyIDs()
	if len(ready) != 2 {
		t.Fatalf("ready = %d ids", len(ready))
	}
	aid, _ := c.ID("a")
	skipped, err := s.FailID(aid)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, id := range skipped {
		names = append(names, c.Name(id))
	}
	sortStrings(names)
	if !reflect.DeepEqual(names, []string{"b", "c", "d"}) {
		t.Fatalf("skipped = %v", names)
	}
	eid, _ := c.ID("e")
	if _, err := s.CompleteID(eid); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || s.Failed() != 1 || s.Skipped() != 3 || s.Completed() != 1 {
		t.Fatalf("counts failed=%d skipped=%d completed=%d", s.Failed(), s.Skipped(), s.Completed())
	}
}

// TestGraphViewsAreSnapshots pins the read-only-view contract: a slice
// handed out before a mutation keeps its contents, and fresh calls see
// the new structure.
func TestGraphViewsAreSnapshots(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	before := g.Children("a")
	if !sameStrings(before, []string{"b", "c"}) {
		t.Fatalf("children = %v", before)
	}
	g.RemoveEdge("a", "b")
	if !sameStrings(before, []string{"b", "c"}) {
		t.Fatalf("snapshot mutated: %v", before)
	}
	if after := g.Children("a"); !sameStrings(after, []string{"c"}) {
		t.Fatalf("children after removal = %v", after)
	}
	// Repeated calls on an unchanged graph share the cached view.
	v1 := g.Children("a")
	v2 := g.Children("a")
	if len(v1) > 0 && &v1[0] != &v2[0] {
		t.Fatal("cached view not shared across calls")
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
