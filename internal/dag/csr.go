package dag

import (
	"fmt"
	"sort"
)

// This file is the integer-indexed core of the package: an interning
// table mapping vertex names to dense int32 IDs and a compressed-sparse-
// row (CSR) adjacency over those IDs. The string-keyed Graph remains the
// construction and analysis API; the CSR is what the workflow manager's
// hot path runs on, where a 100k-task drain must not hash a single
// string or allocate per completion.

// Index interns vertex names to dense int32 IDs in insertion order. IDs
// are stable for the lifetime of the Index and contiguous in [0, Len).
type Index struct {
	names []string
	ids   map[string]int32
}

// NewIndex returns an empty interning table with capacity hint n.
func NewIndex(n int) *Index {
	return &Index{
		names: make([]string, 0, n),
		ids:   make(map[string]int32, n),
	}
}

// Intern returns the ID of name, assigning the next dense ID on first
// sight.
func (ix *Index) Intern(name string) int32 {
	if id, ok := ix.ids[name]; ok {
		return id
	}
	id := int32(len(ix.names))
	ix.names = append(ix.names, name)
	ix.ids[name] = id
	return id
}

// ID returns the ID of name and whether it is interned.
func (ix *Index) ID(name string) (int32, bool) {
	id, ok := ix.ids[name]
	return id, ok
}

// Name returns the name of id. It panics on out-of-range IDs, which can
// only come from caller bugs, never from data.
func (ix *Index) Name(id int32) string { return ix.names[id] }

// Len returns the number of interned names.
func (ix *Index) Len() int { return len(ix.names) }

// Names returns the backing name slice, indexed by ID. Read-only: the
// caller must not mutate it.
func (ix *Index) Names() []string { return ix.names }

// CSR is an immutable compressed-sparse-row adjacency of a DAG over
// interned vertex IDs. Children(v) and Parents(v) are zero-allocation
// subslice views; the topological order and level assignment are
// computed once at construction. Build one with a CSRBuilder or from an
// existing Graph with BuildCSR.
type CSR struct {
	idx *Index
	// children of v are children[childStart[v]:childStart[v+1]], sorted
	// by ID; likewise parents.
	childStart  []int32
	children    []int32
	parentStart []int32
	parents     []int32
	// topo is a topological order of all vertices; level[v] is the
	// longest-path depth of v (0 for roots), the paper's phase index.
	topo      []int32
	level     []int32
	numLevels int
}

// CSRBuilder accumulates vertices and edges, then compiles them into an
// immutable CSR with Build.
type CSRBuilder struct {
	idx      *Index
	from, to []int32
}

// NewCSRBuilder returns a builder with capacity hints for vertices and
// edges.
func NewCSRBuilder(vertices, edges int) *CSRBuilder {
	return &CSRBuilder{
		idx:  NewIndex(vertices),
		from: make([]int32, 0, edges),
		to:   make([]int32, 0, edges),
	}
}

// AddVertex interns name and returns its ID.
func (b *CSRBuilder) AddVertex(name string) int32 { return b.idx.Intern(name) }

// Index exposes the builder's interning table.
func (b *CSRBuilder) Index() *Index { return b.idx }

// AddEdgeIDs records the edge from -> to between already-interned IDs.
// Self-edges are rejected; duplicate edges are collapsed at Build.
func (b *CSRBuilder) AddEdgeIDs(from, to int32) error {
	if from == to {
		return fmt.Errorf("dag: self edge on %q", b.idx.Name(from))
	}
	b.from = append(b.from, from)
	b.to = append(b.to, to)
	return nil
}

// AddEdge records the edge between two names, interning them as needed.
func (b *CSRBuilder) AddEdge(from, to string) error {
	return b.AddEdgeIDs(b.idx.Intern(from), b.idx.Intern(to))
}

// Build compiles the accumulated structure. It returns a *CycleError if
// the edges form a cycle. The builder must not be reused after Build.
func (b *CSRBuilder) Build() (*CSR, error) {
	n := int32(b.idx.Len())
	c := &CSR{
		idx:         b.idx,
		childStart:  make([]int32, n+1),
		parentStart: make([]int32, n+1),
	}
	// Counting pass, then prefix sums, then a fill pass — two linear
	// scans over the edge list, no per-vertex allocation.
	for i := range b.from {
		c.childStart[b.from[i]+1]++
		c.parentStart[b.to[i]+1]++
	}
	for v := int32(0); v < n; v++ {
		c.childStart[v+1] += c.childStart[v]
		c.parentStart[v+1] += c.parentStart[v]
	}
	c.children = make([]int32, len(b.from))
	c.parents = make([]int32, len(b.from))
	childNext := make([]int32, n)
	parentNext := make([]int32, n)
	for i := range b.from {
		f, t := b.from[i], b.to[i]
		c.children[c.childStart[f]+childNext[f]] = t
		childNext[f]++
		c.parents[c.parentStart[t]+parentNext[t]] = f
		parentNext[t]++
	}
	// Canonicalize: adjacency segments sorted by ID, duplicates dropped.
	c.children, c.childStart = dedupSegments(c.children, c.childStart)
	c.parents, c.parentStart = dedupSegments(c.parents, c.parentStart)
	if err := c.computeOrder(); err != nil {
		return nil, err
	}
	return c, nil
}

// dedupSegments sorts each CSR segment and removes duplicate entries,
// compacting the value slice in place.
func dedupSegments(vals []int32, start []int32) ([]int32, []int32) {
	w := int32(0)
	for v := 0; v < len(start)-1; v++ {
		seg := vals[start[v]:start[v+1]]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		newStart := w
		for i, x := range seg {
			if i > 0 && x == seg[i-1] {
				continue
			}
			vals[w] = x
			w++
		}
		start[v] = newStart
	}
	start[len(start)-1] = w
	return vals[:w], start
}

// computeOrder runs Kahn's algorithm over the CSR, filling topo and
// level, and returns a *CycleError (with names) if the graph is cyclic.
func (c *CSR) computeOrder() error {
	n := int32(c.idx.Len())
	indeg := make([]int32, n)
	for v := int32(0); v < n; v++ {
		indeg[v] = int32(c.parentStart[v+1] - c.parentStart[v])
	}
	c.topo = make([]int32, 0, n)
	c.level = make([]int32, n)
	for v := int32(0); v < n; v++ {
		if indeg[v] == 0 {
			c.topo = append(c.topo, v)
		}
	}
	for head := 0; head < len(c.topo); head++ {
		v := c.topo[head]
		lv := c.level[v]
		if int(lv)+1 > c.numLevels {
			c.numLevels = int(lv) + 1
		}
		for _, ch := range c.Children(v) {
			if c.level[ch] < lv+1 {
				c.level[ch] = lv + 1
			}
			indeg[ch]--
			if indeg[ch] == 0 {
				c.topo = append(c.topo, ch)
			}
		}
	}
	if int32(len(c.topo)) != n {
		return &CycleError{Cycle: c.findCycleNames(indeg)}
	}
	return nil
}

// findCycleNames extracts one cycle from the vertices Kahn's algorithm
// could not drain (indeg > 0), for the CycleError.
func (c *CSR) findCycleNames(indeg []int32) []string {
	// Every undrained vertex lies on or downstream of a cycle; walking
	// parents restricted to undrained vertices must revisit one.
	var start int32 = -1
	for v := int32(0); v < int32(len(indeg)); v++ {
		if indeg[v] > 0 {
			start = v
			break
		}
	}
	if start < 0 {
		return nil
	}
	seen := make(map[int32]int) // vertex -> position in walk
	var walk []int32
	v := start
	for {
		if pos, ok := seen[v]; ok {
			cycle := make([]string, 0, len(walk)-pos)
			for _, x := range walk[pos:] {
				cycle = append(cycle, c.idx.Name(x))
			}
			// The walk followed parent edges, so reverse for forward order.
			for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
				cycle[i], cycle[j] = cycle[j], cycle[i]
			}
			return cycle
		}
		seen[v] = len(walk)
		walk = append(walk, v)
		next := int32(-1)
		for _, p := range c.Parents(v) {
			if indeg[p] > 0 {
				next = p
				break
			}
		}
		if next < 0 {
			return nil // cannot happen on a true cycle
		}
		v = next
	}
}

// BuildCSR compiles a Graph into its CSR form. Vertex IDs follow the
// graph's insertion order. Returns a *CycleError on cyclic graphs.
func BuildCSR(g *Graph) (*CSR, error) {
	b := NewCSRBuilder(g.Len(), g.EdgeCount())
	for _, v := range g.order {
		b.AddVertex(v)
	}
	for _, v := range g.order {
		from := b.idx.ids[v]
		for c := range g.children[v] {
			if err := b.AddEdgeIDs(from, b.idx.ids[c]); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// Len returns the number of vertices.
func (c *CSR) Len() int { return c.idx.Len() }

// EdgeCount returns the number of (deduplicated) edges.
func (c *CSR) EdgeCount() int { return len(c.children) }

// Index returns the interning table mapping names to IDs.
func (c *CSR) Index() *Index { return c.idx }

// Name returns the name of id.
func (c *CSR) Name(id int32) string { return c.idx.Name(id) }

// ID returns the ID of name and whether the vertex exists.
func (c *CSR) ID(name string) (int32, bool) { return c.idx.ID(name) }

// Children returns the child IDs of v, sorted. The returned slice is a
// view into the CSR; the caller must not mutate it.
func (c *CSR) Children(v int32) []int32 {
	return c.children[c.childStart[v]:c.childStart[v+1]]
}

// Parents returns the parent IDs of v, sorted. Read-only view.
func (c *CSR) Parents(v int32) []int32 {
	return c.parents[c.parentStart[v]:c.parentStart[v+1]]
}

// InDegree returns the number of parents of v.
func (c *CSR) InDegree(v int32) int { return int(c.parentStart[v+1] - c.parentStart[v]) }

// OutDegree returns the number of children of v.
func (c *CSR) OutDegree(v int32) int { return int(c.childStart[v+1] - c.childStart[v]) }

// TopoOrder returns a topological order of all vertex IDs. Read-only
// view.
func (c *CSR) TopoOrder() []int32 { return c.topo }

// Level returns the topological level (phase index) of v: 0 for roots,
// one past the deepest parent otherwise.
func (c *CSR) Level(v int32) int32 { return c.level[v] }

// NumLevels returns the number of topological levels.
func (c *CSR) NumLevels() int { return c.numLevels }

// LevelSlices partitions vertex IDs by level, each slice ordered by ID.
func (c *CSR) LevelSlices() [][]int32 {
	counts := make([]int32, c.numLevels+1)
	for _, lv := range c.level {
		counts[lv+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	flat := make([]int32, len(c.level))
	next := make([]int32, c.numLevels)
	for v := int32(0); v < int32(len(c.level)); v++ {
		lv := c.level[v]
		flat[counts[lv]+next[lv]] = v
		next[lv]++
	}
	out := make([][]int32, c.numLevels)
	for i := 0; i < c.numLevels; i++ {
		out[i] = flat[counts[i]:counts[i+1]]
	}
	return out
}
