package dag

import (
	"fmt"
	"sort"
)

// baselineScheduler is the map-based ready-frontier tracker this
// package shipped before the CSR rewrite, preserved verbatim
// (test-only) as the benchmark baseline: string-keyed remaining/state
// maps, map-iteration adjacency, and a sort per Complete call. The
// throughput benchmarks in throughput_bench_test.go race it against
// the index-based Scheduler on identical shapes.
type baselineScheduler struct {
	g         *Graph
	remaining map[string]int
	state     map[string]VertexState
	ready     []string
	terminal  int
	completed int
	skipped   int
	failed    int
}

func newBaselineScheduler(g *Graph) (*baselineScheduler, error) {
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}
	s := &baselineScheduler{
		g:         g,
		remaining: make(map[string]int, g.Len()),
		state:     make(map[string]VertexState, g.Len()),
	}
	for _, v := range g.Vertices() {
		n := g.InDegree(v)
		s.remaining[v] = n
		if n == 0 {
			s.state[v] = StateReady
			s.ready = append(s.ready, v)
		} else {
			s.state[v] = StatePending
		}
	}
	sort.Strings(s.ready)
	return s, nil
}

func (s *baselineScheduler) takeReady() []string {
	out := s.ready
	s.ready = nil
	for _, v := range out {
		s.state[v] = StateRunning
	}
	return out
}

func (s *baselineScheduler) complete(v string) ([]string, error) {
	switch s.state[v] {
	case StateRunning, StateReady:
	default:
		return nil, fmt.Errorf("dag: Complete(%q): vertex is %s", v, s.state[v])
	}
	s.state[v] = StateCompleted
	s.terminal++
	s.completed++
	var newly []string
	for c := range s.g.children[v] {
		s.remaining[c]--
		if s.remaining[c] == 0 && s.state[c] == StatePending {
			s.state[c] = StateRunning
			newly = append(newly, c)
		}
	}
	sort.Strings(newly)
	return newly, nil
}

func (s *baselineScheduler) done() bool { return s.terminal == s.g.Len() }
