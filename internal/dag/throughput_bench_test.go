package dag

import (
	"fmt"
	"math/rand"
	"testing"
)

// Scheduler throughput suite: drains whole DAGs through the index-based
// Scheduler and through the retired map-based baseline on identical
// shapes at 1k/10k/100k tasks, reporting tasks/s. Run via `make bench`
// (or `go test ./internal/dag -bench SchedulerThroughput -benchmem`);
// the numbers land in BENCH_pr3.json and EXPERIMENTS.md.

// benchShape names a DAG generator used by the throughput suite.
type benchShape struct {
	name  string
	edges func(n int) (names []string, edges [][2]int32)
}

// chainShape: v0 -> v1 -> ... -> v(n-1); the deepest possible DAG.
func chainShape(n int) ([]string, [][2]int32) {
	names := benchNames(n)
	edges := make([][2]int32, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int32{int32(i - 1), int32(i)})
	}
	return names, edges
}

// fanoutShape: one root feeding n-1 leaves; the widest possible DAG.
func fanoutShape(n int) ([]string, [][2]int32) {
	names := benchNames(n)
	edges := make([][2]int32, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int32{0, int32(i)})
	}
	return names, edges
}

// diamondShape: repeated 1 -> w -> 1 diamonds, mixing joins (true
// barriers) with intra-diamond parallelism.
func diamondShape(n int) ([]string, [][2]int32) {
	const w = 8
	names := benchNames(n)
	var edges [][2]int32
	i := 0
	for i+w+1 < n {
		top := int32(i)
		bottom := int32(i + w + 1)
		for j := 1; j <= w; j++ {
			mid := int32(i + j)
			edges = append(edges, [2]int32{top, mid}, [2]int32{mid, bottom})
		}
		i += w + 1
	}
	for j := i + 1; j < n; j++ { // trailing chain remainder
		edges = append(edges, [2]int32{int32(j - 1), int32(j)})
	}
	return names, edges
}

// randomShape: a layered random DAG (the layeredGraph generator scaled
// up): ~32 tasks per layer, each with two random parents in the
// previous layer. This is the acceptance-criteria shape.
func randomShape(n int) ([]string, [][2]int32) {
	const width = 32
	names := benchNames(n)
	r := rand.New(rand.NewSource(42))
	var edges [][2]int32
	layerStart := 0
	for layerStart < n {
		layerEnd := layerStart + width
		if layerEnd > n {
			layerEnd = n
		}
		if layerStart > 0 {
			prevStart := layerStart - width
			for v := layerStart; v < layerEnd; v++ {
				for k := 0; k < 2; k++ {
					p := prevStart + r.Intn(layerStart-prevStart)
					edges = append(edges, [2]int32{int32(p), int32(v)})
				}
			}
		}
		layerStart = layerEnd
	}
	return names, edges
}

func benchNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		// Realistic workflow task names: category_index, fixed width so
		// the baseline's string sorts see representative keys.
		names[i] = fmt.Sprintf("task_%08d", i)
	}
	return names
}

var benchShapes = []benchShape{
	{"chain", chainShape},
	{"fanout", fanoutShape},
	{"diamond", diamondShape},
	{"random", randomShape},
}

var benchSizes = []int{1_000, 10_000, 100_000}

func buildBenchCSR(tb testing.TB, names []string, edges [][2]int32) *CSR {
	b := NewCSRBuilder(len(names), len(edges))
	for _, n := range names {
		b.AddVertex(n)
	}
	for _, e := range edges {
		if err := b.AddEdgeIDs(e[0], e[1]); err != nil {
			tb.Fatal(err)
		}
	}
	c, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func buildBenchGraph(names []string, edges [][2]int32) *Graph {
	g := New()
	for _, n := range names {
		g.AddVertex(n)
	}
	for _, e := range edges {
		g.AddEdge(names[e[0]], names[e[1]])
	}
	return g
}

// BenchmarkSchedulerThroughputCSR drains one whole DAG per iteration
// through the index-based scheduler: NewSchedulerCSR + TakeReadyIDs +
// one CompleteID per task. The CSR itself is the static compiled
// workflow, built once outside the loop — exactly the once-per-run
// split the workflow manager has.
func BenchmarkSchedulerThroughputCSR(b *testing.B) {
	for _, shape := range benchShapes {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s_%d", shape.name, size), func(b *testing.B) {
				names, edges := shape.edges(size)
				c := buildBenchCSR(b, names, edges)
				frontier := make([]int32, 0, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := NewSchedulerCSR(c)
					frontier = append(frontier[:0], s.TakeReadyIDs()...)
					for len(frontier) > 0 {
						id := frontier[len(frontier)-1]
						frontier = frontier[:len(frontier)-1]
						newly, err := s.CompleteID(id)
						if err != nil {
							b.Fatal(err)
						}
						frontier = append(frontier, newly...)
					}
					if !s.Done() {
						b.Fatal("not drained")
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
			})
		}
	}
}

// BenchmarkSchedulerThroughputBaseline drains the identical DAGs
// through the retired map-based scheduler (see
// baseline_bench_test.go) for the before/after comparison.
func BenchmarkSchedulerThroughputBaseline(b *testing.B) {
	for _, shape := range benchShapes {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s_%d", shape.name, size), func(b *testing.B) {
				names, edges := shape.edges(size)
				g := buildBenchGraph(names, edges)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := newBaselineScheduler(g)
					if err != nil {
						b.Fatal(err)
					}
					frontier := s.takeReady()
					for len(frontier) > 0 {
						v := frontier[len(frontier)-1]
						frontier = frontier[:len(frontier)-1]
						newly, err := s.complete(v)
						if err != nil {
							b.Fatal(err)
						}
						frontier = append(frontier, newly...)
					}
					if !s.done() {
						b.Fatal("not drained")
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
			})
		}
	}
}

// BenchmarkCSRBuild measures compiling the static structure itself
// (interning + counting-sort fill + topo/levels), amortized once per
// run in the manager.
func BenchmarkCSRBuild(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("random_%d", size), func(b *testing.B) {
			names, edges := randomShape(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildBenchCSR(b, names, edges)
			}
		})
	}
}
