package dag

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "a", "c")
	mustEdge(t, g, "b", "d")
	mustEdge(t, g, "c", "d")
	return g
}

func mustEdge(t *testing.T, g *Graph, from, to string) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatalf("AddEdge(%q,%q): %v", from, to, err)
	}
}

func TestAddVertexIdempotent(t *testing.T) {
	g := New()
	g.AddVertex("x")
	g.AddVertex("x")
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestSelfEdgeRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("self edge accepted")
	}
}

func TestHasEdgeAndRemove(t *testing.T) {
	g := diamond(t)
	if !g.HasEdge("a", "b") {
		t.Fatal("missing edge a->b")
	}
	g.RemoveEdge("a", "b")
	if g.HasEdge("a", "b") {
		t.Fatal("edge a->b survived removal")
	}
	if got := g.Parents("b"); len(got) != 0 {
		t.Fatalf("Parents(b) = %v, want empty", got)
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g := diamond(t)
	if got := g.Roots(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Roots = %v", got)
	}
	if got := g.Leaves(); !reflect.DeepEqual(got, []string{"d"}) {
		t.Fatalf("Leaves = %v", got)
	}
}

func TestDegrees(t *testing.T) {
	g := diamond(t)
	if g.OutDegree("a") != 2 || g.InDegree("a") != 0 {
		t.Fatalf("a degrees wrong: out=%d in=%d", g.OutDegree("a"), g.InDegree("a"))
	}
	if g.InDegree("d") != 2 {
		t.Fatalf("InDegree(d) = %d", g.InDegree("d"))
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("order %v violates edge %v", order, e)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	build := func() *Graph {
		g := New()
		mustEdge(t, g, "r", "z")
		mustEdge(t, g, "r", "a")
		mustEdge(t, g, "r", "m")
		return g
	}
	a, _ := build().TopoSort()
	b, _ := build().TopoSort()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic topo: %v vs %v", a, b)
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	mustEdge(t, g, "c", "a")
	_, err := g.TopoSort()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("want CycleError, got %v", err)
	}
	if len(ce.Cycle) != 3 {
		t.Fatalf("cycle = %v, want 3 vertices", ce.Cycle)
	}
	// verify reported cycle is a real cycle
	for i, v := range ce.Cycle {
		next := ce.Cycle[(i+1)%len(ce.Cycle)]
		if !g.HasEdge(v, next) {
			t.Fatalf("reported cycle %v has no edge %s->%s", ce.Cycle, v, next)
		}
	}
}

func TestLevelsDiamond(t *testing.T) {
	g := diamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a"}, {"b", "c"}, {"d"}}
	if !reflect.DeepEqual(levels, want) {
		t.Fatalf("Levels = %v, want %v", levels, want)
	}
}

func TestLevelsDeepestParentWins(t *testing.T) {
	// a -> b -> c, a -> c : c must be at level 2, not 1.
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	mustEdge(t, g, "a", "c")
	m, err := g.LevelOf()
	if err != nil {
		t.Fatal(err)
	}
	if m["c"] != 2 {
		t.Fatalf("level(c) = %d, want 2", m["c"])
	}
}

func TestLevelsCycle(t *testing.T) {
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "a")
	if _, err := g.Levels(); err == nil {
		t.Fatal("Levels accepted a cyclic graph")
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t)
	w := map[string]float64{"a": 1, "b": 5, "c": 2, "d": 1}
	path, total, err := g.CriticalPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Fatalf("total = %v, want 7", total)
	}
	if !reflect.DeepEqual(path, []string{"a", "b", "d"}) {
		t.Fatalf("path = %v", path)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	g := New()
	path, total, err := g.CriticalPath(nil)
	if err != nil || path != nil || total != 0 {
		t.Fatalf("empty graph: path=%v total=%v err=%v", path, total, err)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := diamond(t)
	if got := g.Ancestors("d"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Ancestors(d) = %v", got)
	}
	if got := g.Descendants("a"); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("Descendants(a) = %v", got)
	}
	if got := g.Ancestors("a"); len(got) != 0 {
		t.Fatalf("Ancestors(a) = %v, want empty", got)
	}
}

func TestTransitiveReduction(t *testing.T) {
	// a->b->c plus the redundant a->c.
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	mustEdge(t, g, "a", "c")
	if err := g.TransitiveReduction(); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge("a", "c") {
		t.Fatal("redundant edge a->c survived")
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "c") {
		t.Fatal("reduction removed a necessary edge")
	}
}

func TestTransitiveReductionPreservesLevels(t *testing.T) {
	g := New()
	mustEdge(t, g, "a", "b")
	mustEdge(t, g, "b", "c")
	mustEdge(t, g, "a", "c")
	mustEdge(t, g, "c", "d")
	mustEdge(t, g, "a", "d")
	before, _ := g.LevelOf()
	if err := g.TransitiveReduction(); err != nil {
		t.Fatal(err)
	}
	after, _ := g.LevelOf()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("levels changed: %v -> %v", before, after)
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.RemoveEdge("a", "b")
	if !g.HasEdge("a", "b") {
		t.Fatal("mutating clone affected original")
	}
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}
}

// randomDAG builds a random DAG by only adding forward edges over a
// shuffled vertex order, so it is acyclic by construction.
func randomDAG(r *rand.Rand, n int) *Graph {
	g := New()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		g.AddVertex(names[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(4) == 0 {
				g.AddEdge(names[i], names[j])
			}
		}
	}
	return g
}

func TestQuickTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(20))
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, v := range order {
			pos[v] = i
		}
		for _, u := range g.Vertices() {
			for _, c := range g.Children(u) {
				if pos[u] >= pos[c] {
					return false
				}
			}
		}
		return len(order) == g.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelsPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(20))
		levels, err := g.Levels()
		if err != nil {
			return false
		}
		var all []string
		for _, lv := range levels {
			all = append(all, lv...)
		}
		if len(all) != g.Len() {
			return false
		}
		sort.Strings(all)
		want := g.Vertices()
		sort.Strings(want)
		if !reflect.DeepEqual(all, want) {
			return false
		}
		// every vertex strictly deeper than all its parents
		lv, _ := g.LevelOf()
		for _, v := range g.Vertices() {
			for _, p := range g.Parents(v) {
				if lv[p] >= lv[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransitiveReductionPreservesReachability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(15))
		before := map[string][]string{}
		for _, v := range g.Vertices() {
			before[v] = g.Descendants(v)
		}
		if err := g.TransitiveReduction(); err != nil {
			return false
		}
		for _, v := range g.Vertices() {
			if !reflect.DeepEqual(before[v], g.Descendants(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
