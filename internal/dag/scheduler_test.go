package dag

import (
	"reflect"
	"testing"
)

// diamondGraph builds a -> {b, c} -> d.
func diamondGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSchedulerRejectsCycle(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	if _, err := NewScheduler(g); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestSchedulerDiamond(t *testing.T) {
	s, err := NewScheduler(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Ready(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("initial ready = %v", got)
	}
	if got := s.TakeReady(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("TakeReady = %v", got)
	}
	if len(s.TakeReady()) != 0 {
		t.Fatal("second TakeReady not empty")
	}
	if s.State("a") != StateRunning {
		t.Fatalf("a state = %v", s.State("a"))
	}

	newly, err := s.Complete("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(newly, []string{"b", "c"}) {
		t.Fatalf("after a: newly = %v", newly)
	}
	// Newly-ready vertices are handed out as running — dispatchable
	// directly without a TakeReady round trip.
	if s.State("b") != StateRunning || s.State("c") != StateRunning {
		t.Fatalf("b=%v c=%v", s.State("b"), s.State("c"))
	}

	// d needs BOTH parents: completing only b must not release it.
	newly, err = s.Complete("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 0 {
		t.Fatalf("after b: newly = %v, want none (c still running)", newly)
	}
	newly, err = s.Complete("c")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(newly, []string{"d"}) {
		t.Fatalf("after c: newly = %v", newly)
	}
	if s.Done() {
		t.Fatal("Done before d completed")
	}
	if _, err := s.Complete("d"); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || s.Remaining() != 0 || s.Completed() != 4 {
		t.Fatalf("terminal counts: done=%v remaining=%d completed=%d", s.Done(), s.Remaining(), s.Completed())
	}
}

func TestSchedulerFailSkipsDescendants(t *testing.T) {
	// a -> b -> d, a -> c, and an independent root e.
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	g.AddVertex("e")
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	ready := s.TakeReady()
	if !reflect.DeepEqual(ready, []string{"a", "e"}) {
		t.Fatalf("ready = %v", ready)
	}
	skipped, err := s.Fail("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(skipped, []string{"b", "c", "d"}) {
		t.Fatalf("skipped = %v", skipped)
	}
	for _, v := range skipped {
		if s.State(v) != StateSkipped {
			t.Fatalf("%s state = %v", v, s.State(v))
		}
	}
	// The independent root is untouched and the DAG drains.
	if _, err := s.Complete("e"); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || s.Failed() != 1 || s.Skipped() != 3 || s.Completed() != 1 {
		t.Fatalf("counts: failed=%d skipped=%d completed=%d", s.Failed(), s.Skipped(), s.Completed())
	}
}

func TestSchedulerFailSharedDescendantOnce(t *testing.T) {
	// Two failing parents share child c: it must be reported skipped
	// exactly once.
	g := New()
	g.AddEdge("a", "c")
	g.AddEdge("b", "c")
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	s.TakeReady()
	skipped, err := s.Fail("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(skipped, []string{"c"}) {
		t.Fatalf("first Fail skipped = %v", skipped)
	}
	skipped, err = s.Fail("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("second Fail skipped = %v, want none", skipped)
	}
	if s.Skipped() != 1 {
		t.Fatalf("Skipped = %d", s.Skipped())
	}
}

func TestSchedulerDoubleCompleteRejected(t *testing.T) {
	s, err := NewScheduler(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	s.TakeReady()
	if _, err := s.Complete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Complete("a"); err == nil {
		t.Fatal("double Complete accepted")
	}
	if _, err := s.Complete("unknown"); err == nil {
		t.Fatal("Complete of unknown vertex accepted")
	}
	if _, err := s.Complete("d"); err == nil {
		t.Fatal("Complete of pending vertex accepted")
	}
}

func TestSchedulerCompleteWithoutTake(t *testing.T) {
	// Completing straight from the ready set (without TakeReady) is
	// allowed — callers that dispatch from Ready() peek use this.
	s, err := NewScheduler(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Complete("a"); err != nil {
		t.Fatal(err)
	}
	if got := s.Ready(); len(got) != 0 {
		t.Fatalf("ready after direct Complete = %v", got)
	}
}

// TestSchedulerMatchesLevels drives a scheduler to completion over a
// layered graph and checks that every vertex becomes ready only after
// all its parents completed — the same partial order Levels encodes.
func TestSchedulerMatchesLevels(t *testing.T) {
	g := layeredGraph(6, 8) // 6 levels x 8 vertices, cross edges
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	completed := make(map[string]bool)
	frontier := s.TakeReady()
	for len(frontier) > 0 {
		next := []string{}
		for _, v := range frontier {
			for _, p := range g.Parents(v) {
				if !completed[p] {
					t.Fatalf("%s became ready before parent %s completed", v, p)
				}
			}
			newly, err := s.Complete(v)
			if err != nil {
				t.Fatal(err)
			}
			completed[v] = true
			next = append(next, newly...)
		}
		frontier = next
	}
	if !s.Done() {
		t.Fatalf("scheduler not drained: %d remaining", s.Remaining())
	}
	if len(completed) != g.Len() {
		t.Fatalf("completed %d of %d vertices", len(completed), g.Len())
	}
}

func TestSchedulerSeedCompleted(t *testing.T) {
	// Diamond a -> {b, c} -> d with a and b already done (a recovered
	// journal): c must be the only ready vertex, and completing it must
	// release d without b ever running again.
	s, err := NewScheduler(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int32, 2)
	for i, name := range []string{"a", "b"} {
		id, ok := s.CSR().ID(name)
		if !ok {
			t.Fatalf("no id for %s", name)
		}
		ids[i] = id
	}
	if err := s.SeedCompletedIDs(ids); err != nil {
		t.Fatal(err)
	}
	if got := s.Ready(); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("ready after seed = %v, want [c]", got)
	}
	if s.Completed() != 2 || s.Remaining() != 2 {
		t.Fatalf("completed=%d remaining=%d after seed", s.Completed(), s.Remaining())
	}
	newly, err := s.Complete("c")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(newly, []string{"d"}) {
		t.Fatalf("completing c released %v, want [d]", newly)
	}
	if _, err := s.Complete("d"); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatalf("scheduler not drained: %d remaining", s.Remaining())
	}
}

func TestSchedulerSeedWholeGraph(t *testing.T) {
	// Resuming a run that had already finished: every vertex seeded, the
	// scheduler is immediately done and the ready set stays empty.
	s, err := NewScheduler(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int32, s.CSR().Len())
	for i := range all {
		all[i] = int32(i)
	}
	if err := s.SeedCompletedIDs(all); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatalf("fully-seeded scheduler not done: %d remaining", s.Remaining())
	}
	if got := s.TakeReadyIDs(); len(got) != 0 {
		t.Fatalf("fully-seeded scheduler has ready set %v", got)
	}
}

func TestSchedulerSeedErrors(t *testing.T) {
	s, err := NewScheduler(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SeedCompletedIDs([]int32{99}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	a, _ := s.CSR().ID("a")
	if err := s.SeedCompletedIDs([]int32{a, a}); err == nil {
		t.Fatal("double seed accepted")
	}
	s2, _ := NewScheduler(diamondGraph(t))
	s2.TakeReadyIDs()
	a2, _ := s2.CSR().ID("a")
	if err := s2.SeedCompletedIDs([]int32{a2}); err == nil {
		t.Fatal("seeding a running vertex accepted")
	}
}
