package dag

import (
	"fmt"
	"sort"
)

// VertexState tracks a vertex through a Scheduler's lifecycle.
type VertexState int

const (
	// StatePending means at least one parent has not completed yet.
	StatePending VertexState = iota
	// StateReady means every parent completed; the vertex is waiting in
	// the ready set to be taken by the caller.
	StateReady
	// StateRunning means the caller took the vertex via TakeReady and
	// has not reported an outcome yet.
	StateRunning
	// StateCompleted means the vertex finished successfully.
	StateCompleted
	// StateFailed means the caller reported the vertex as failed.
	StateFailed
	// StateSkipped means an ancestor failed, so the vertex can never
	// become ready.
	StateSkipped
)

// String names the state for diagnostics.
func (s VertexState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateFailed:
		return "failed"
	case StateSkipped:
		return "skipped"
	}
	return fmt.Sprintf("VertexState(%d)", int(s))
}

// Scheduler tracks the ready frontier of a DAG incrementally: instead of
// re-deriving topological levels after every completion (O(V+E) each
// time), it counts remaining unfinished parents per vertex and updates
// the counts as completions are reported, so the whole execution costs
// O(V+E) total. This is the readiness engine behind the workflow
// manager's dependency-driven scheduling mode.
//
// The lifecycle of a vertex is pending -> ready -> running -> completed
// or failed; descendants of a failed vertex become skipped. A Scheduler
// is not safe for concurrent use; the workflow manager drives it from a
// single event loop.
type Scheduler struct {
	g *Graph
	// remaining counts parents not yet completed, per pending vertex.
	remaining map[string]int
	state     map[string]VertexState
	// ready is the current frontier, kept sorted for determinism.
	ready []string
	// terminal counts vertices in a terminal state (completed, failed,
	// or skipped).
	terminal  int
	completed int
	skipped   int
	failed    int
}

// NewScheduler builds a Scheduler for g. It returns a *CycleError if g
// is cyclic (a cyclic graph can never drain). The graph must not be
// mutated while the scheduler is in use.
func NewScheduler(g *Graph) (*Scheduler, error) {
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		g:         g,
		remaining: make(map[string]int, g.Len()),
		state:     make(map[string]VertexState, g.Len()),
	}
	for _, v := range g.order {
		n := len(g.parents[v])
		s.remaining[v] = n
		if n == 0 {
			s.state[v] = StateReady
			s.ready = append(s.ready, v)
		} else {
			s.state[v] = StatePending
		}
	}
	sort.Strings(s.ready)
	return s, nil
}

// State returns the lifecycle state of v. Unknown vertices report
// StatePending.
func (s *Scheduler) State(v string) VertexState { return s.state[v] }

// Ready returns a copy of the current ready set, sorted.
func (s *Scheduler) Ready() []string {
	out := make([]string, len(s.ready))
	copy(out, s.ready)
	return out
}

// TakeReady drains the ready set, marking every returned vertex running.
// The caller must eventually report each via Complete or Fail.
func (s *Scheduler) TakeReady() []string {
	out := s.ready
	s.ready = nil
	for _, v := range out {
		s.state[v] = StateRunning
	}
	return out
}

// Complete reports that v finished successfully and returns the
// vertices that became ready as a result, sorted. The returned vertices
// are marked running (as if taken), so the caller can dispatch them
// directly. It is an error to complete a vertex that is not running or
// ready.
func (s *Scheduler) Complete(v string) ([]string, error) {
	switch s.state[v] {
	case StateRunning, StateReady:
	default:
		return nil, fmt.Errorf("dag: Complete(%q): vertex is %s", v, s.state[v])
	}
	if s.state[v] == StateReady {
		s.dropReady(v)
	}
	s.state[v] = StateCompleted
	s.terminal++
	s.completed++
	var newly []string
	for c := range s.g.children[v] {
		s.remaining[c]--
		if s.remaining[c] == 0 && s.state[c] == StatePending {
			s.state[c] = StateRunning
			newly = append(newly, c)
		}
	}
	sort.Strings(newly)
	return newly, nil
}

// Fail reports that v failed and returns every descendant that can now
// never run, sorted; those descendants are marked skipped. Descendants
// already skipped by an earlier failure are not returned again.
func (s *Scheduler) Fail(v string) ([]string, error) {
	switch s.state[v] {
	case StateRunning, StateReady:
	default:
		return nil, fmt.Errorf("dag: Fail(%q): vertex is %s", v, s.state[v])
	}
	if s.state[v] == StateReady {
		s.dropReady(v)
	}
	s.state[v] = StateFailed
	s.terminal++
	s.failed++
	// Every pending descendant is unreachable: one of its ancestors
	// (v) will never complete.
	var skipped []string
	stack := make([]string, 0, len(s.g.children[v]))
	for c := range s.g.children[v] {
		stack = append(stack, c)
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.state[c] != StatePending {
			continue
		}
		s.state[c] = StateSkipped
		s.terminal++
		s.skipped++
		skipped = append(skipped, c)
		for gc := range s.g.children[c] {
			stack = append(stack, gc)
		}
	}
	sort.Strings(skipped)
	return skipped, nil
}

// Done reports whether every vertex reached a terminal state.
func (s *Scheduler) Done() bool { return s.terminal == s.g.Len() }

// Remaining returns the number of vertices not yet terminal.
func (s *Scheduler) Remaining() int { return s.g.Len() - s.terminal }

// Completed returns the number of successfully completed vertices.
func (s *Scheduler) Completed() int { return s.completed }

// Failed returns the number of failed vertices.
func (s *Scheduler) Failed() int { return s.failed }

// Skipped returns the number of vertices skipped due to ancestor
// failures.
func (s *Scheduler) Skipped() int { return s.skipped }

// dropReady removes v from the sorted ready slice.
func (s *Scheduler) dropReady(v string) {
	i := sort.SearchStrings(s.ready, v)
	if i < len(s.ready) && s.ready[i] == v {
		s.ready = append(s.ready[:i], s.ready[i+1:]...)
	}
}
