package dag

import (
	"fmt"
	"sort"
)

// VertexState tracks a vertex through a Scheduler's lifecycle.
type VertexState int

const (
	// StatePending means at least one parent has not completed yet.
	StatePending VertexState = iota
	// StateReady means every parent completed; the vertex is waiting in
	// the ready set to be taken by the caller.
	StateReady
	// StateRunning means the caller took the vertex via TakeReady and
	// has not reported an outcome yet.
	StateRunning
	// StateCompleted means the vertex finished successfully.
	StateCompleted
	// StateFailed means the caller reported the vertex as failed.
	StateFailed
	// StateSkipped means an ancestor failed, so the vertex can never
	// become ready.
	StateSkipped
)

// String names the state for diagnostics.
func (s VertexState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateFailed:
		return "failed"
	case StateSkipped:
		return "skipped"
	}
	return fmt.Sprintf("VertexState(%d)", int(s))
}

// Scheduler tracks the ready frontier of a DAG incrementally: instead of
// re-deriving topological levels after every completion (O(V+E) each
// time), it counts remaining unfinished parents per vertex and updates
// the counts as completions are reported, so the whole execution costs
// O(V+E) total. This is the readiness engine behind the workflow
// manager's dependency-driven scheduling mode.
//
// All bookkeeping lives in flat int32 arrays indexed by interned vertex
// ID over a CSR adjacency — a 100k-task drain performs no string
// hashing, no sorting, and no steady-state allocation. The ID-based
// methods (TakeReadyIDs, CompleteID, FailID) are the hot-path API and
// return scratch slices valid only until the next Scheduler call; the
// string methods wrap them for convenience and return fresh sorted
// copies.
//
// The lifecycle of a vertex is pending -> ready -> running -> completed
// or failed; descendants of a failed vertex become skipped. A Scheduler
// is not safe for concurrent use; the workflow manager drives it from a
// single event loop.
type Scheduler struct {
	c *CSR
	// remaining counts parents not yet completed, per pending vertex.
	remaining []int32
	state     []VertexState
	// ready is the current frontier in ID order.
	ready []int32
	// terminal counts vertices in a terminal state (completed, failed,
	// or skipped).
	terminal  int
	completed int
	skipped   int
	failed    int
	// newly and stack are scratch buffers reused across CompleteID and
	// FailID calls.
	newly []int32
	stack []int32
}

// NewScheduler builds a Scheduler for g. It returns a *CycleError if g
// is cyclic (a cyclic graph can never drain). The graph must not be
// mutated while the scheduler is in use.
func NewScheduler(g *Graph) (*Scheduler, error) {
	c, err := BuildCSR(g)
	if err != nil {
		return nil, err
	}
	return NewSchedulerCSR(c), nil
}

// NewSchedulerCSR builds a Scheduler directly over a compiled CSR — the
// zero-conversion path the workflow manager uses. A CSR is acyclic by
// construction, so no error is possible.
func NewSchedulerCSR(c *CSR) *Scheduler {
	n := int32(c.Len())
	s := &Scheduler{
		c:         c,
		remaining: make([]int32, n),
		state:     make([]VertexState, n),
	}
	for v := int32(0); v < n; v++ {
		d := int32(c.InDegree(v))
		s.remaining[v] = d
		if d == 0 {
			s.state[v] = StateReady
			s.ready = append(s.ready, v)
		}
	}
	return s
}

// CSR returns the compiled adjacency the scheduler runs on.
func (s *Scheduler) CSR() *CSR { return s.c }

// StateID returns the lifecycle state of id.
func (s *Scheduler) StateID(id int32) VertexState { return s.state[id] }

// State returns the lifecycle state of v. Unknown vertices report
// StatePending.
func (s *Scheduler) State(v string) VertexState {
	id, ok := s.c.ID(v)
	if !ok {
		return StatePending
	}
	return s.state[id]
}

// ReadyIDs returns the current ready frontier in ID order. Read-only
// view, valid until the next Scheduler call.
func (s *Scheduler) ReadyIDs() []int32 { return s.ready }

// Ready returns a copy of the current ready set, sorted by name.
func (s *Scheduler) Ready() []string { return s.sortedNames(s.ready) }

// TakeReadyIDs drains the ready set, marking every returned vertex
// running. The returned slice is valid until the next TakeReadyIDs
// call; the caller must eventually report each ID via CompleteID or
// FailID.
func (s *Scheduler) TakeReadyIDs() []int32 {
	out := s.ready
	s.ready = s.ready[len(s.ready):]
	for _, id := range out {
		s.state[id] = StateRunning
	}
	return out
}

// TakeReady drains the ready set, marking every returned vertex running
// and returning names sorted. The caller must eventually report each
// via Complete or Fail.
func (s *Scheduler) TakeReady() []string {
	ids := s.TakeReadyIDs()
	if len(ids) == 0 {
		return nil
	}
	return s.sortedNames(ids)
}

// SeedCompletedIDs marks ids completed before execution begins — the
// resume path: a recovered journal's done-set is folded in so the ready
// frontier starts exactly where the crashed run stopped. Children whose
// parents are all seeded become ready. Must be called before any
// TakeReadyIDs/CompleteID/FailID activity; it is an error to seed a
// vertex twice or after execution has started (a running or terminal
// vertex).
func (s *Scheduler) SeedCompletedIDs(ids []int32) error {
	for _, id := range ids {
		if id < 0 || int(id) >= s.c.Len() {
			return fmt.Errorf("dag: SeedCompletedIDs: id %d out of range", id)
		}
		switch s.state[id] {
		case StateReady:
			s.dropReady(id)
		case StatePending:
		default:
			return fmt.Errorf("dag: SeedCompletedIDs(%q): vertex is %s", s.c.Name(id), s.state[id])
		}
		s.state[id] = StateCompleted
		s.terminal++
		s.completed++
	}
	// Parent counts second, so a seeded child is never re-readied by its
	// seeded parent regardless of the order ids arrived in.
	for _, id := range ids {
		for _, c := range s.c.Children(id) {
			s.remaining[c]--
			if s.remaining[c] == 0 && s.state[c] == StatePending {
				s.state[c] = StateReady
				s.ready = append(s.ready, c)
			}
		}
	}
	sort.Slice(s.ready, func(i, k int) bool { return s.ready[i] < s.ready[k] })
	return nil
}

// CompleteID reports that id finished successfully and returns the IDs
// that became ready as a result, in ID order. The returned vertices are
// marked running (as if taken), so the caller can dispatch them
// directly. The slice is scratch, valid until the next CompleteID or
// FailID call. It is an error to complete a vertex that is not running
// or ready.
func (s *Scheduler) CompleteID(id int32) ([]int32, error) {
	if err := s.leaveActive(id, "Complete"); err != nil {
		return nil, err
	}
	s.state[id] = StateCompleted
	s.terminal++
	s.completed++
	s.newly = s.newly[:0]
	for _, c := range s.c.Children(id) {
		s.remaining[c]--
		if s.remaining[c] == 0 && s.state[c] == StatePending {
			s.state[c] = StateRunning
			s.newly = append(s.newly, c)
		}
	}
	return s.newly, nil
}

// Complete reports that v finished successfully and returns the
// vertices that became ready as a result, sorted by name. The returned
// vertices are marked running (as if taken), so the caller can dispatch
// them directly. It is an error to complete a vertex that is not
// running or ready.
func (s *Scheduler) Complete(v string) ([]string, error) {
	id, ok := s.c.ID(v)
	if !ok {
		return nil, fmt.Errorf("dag: Complete(%q): vertex is %s", v, StatePending)
	}
	newly, err := s.CompleteID(id)
	if err != nil {
		return nil, err
	}
	if len(newly) == 0 {
		return nil, nil
	}
	return s.sortedNames(newly), nil
}

// FailID reports that id failed and returns every descendant that can
// now never run, in discovery order; those descendants are marked
// skipped. Descendants already skipped by an earlier failure are not
// returned again. The slice is scratch, valid until the next CompleteID
// or FailID call.
func (s *Scheduler) FailID(id int32) ([]int32, error) {
	if err := s.leaveActive(id, "Fail"); err != nil {
		return nil, err
	}
	s.state[id] = StateFailed
	s.terminal++
	s.failed++
	// Every pending descendant is unreachable: one of its ancestors
	// (id) will never complete.
	s.newly = s.newly[:0]
	s.stack = append(s.stack[:0], s.c.Children(id)...)
	for len(s.stack) > 0 {
		c := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if s.state[c] != StatePending {
			continue
		}
		s.state[c] = StateSkipped
		s.terminal++
		s.skipped++
		s.newly = append(s.newly, c)
		s.stack = append(s.stack, s.c.Children(c)...)
	}
	return s.newly, nil
}

// Fail reports that v failed and returns every descendant that can now
// never run, sorted by name; those descendants are marked skipped.
// Descendants already skipped by an earlier failure are not returned
// again.
func (s *Scheduler) Fail(v string) ([]string, error) {
	id, ok := s.c.ID(v)
	if !ok {
		return nil, fmt.Errorf("dag: Fail(%q): vertex is %s", v, StatePending)
	}
	skipped, err := s.FailID(id)
	if err != nil {
		return nil, err
	}
	if len(skipped) == 0 {
		return nil, nil
	}
	return s.sortedNames(skipped), nil
}

// leaveActive validates that id may leave the active (ready or running)
// states and removes it from the ready frontier if still there.
func (s *Scheduler) leaveActive(id int32, op string) error {
	switch s.state[id] {
	case StateRunning:
	case StateReady:
		s.dropReady(id)
	default:
		return fmt.Errorf("dag: %s(%q): vertex is %s", op, s.c.Name(id), s.state[id])
	}
	return nil
}

// Done reports whether every vertex reached a terminal state.
func (s *Scheduler) Done() bool { return s.terminal == s.c.Len() }

// Remaining returns the number of vertices not yet terminal.
func (s *Scheduler) Remaining() int { return s.c.Len() - s.terminal }

// Completed returns the number of successfully completed vertices.
func (s *Scheduler) Completed() int { return s.completed }

// Failed returns the number of failed vertices.
func (s *Scheduler) Failed() int { return s.failed }

// Skipped returns the number of vertices skipped due to ancestor
// failures.
func (s *Scheduler) Skipped() int { return s.skipped }

// dropReady removes id from the ready slice. Rare path: only reached
// when a vertex is completed or failed without having been taken.
func (s *Scheduler) dropReady(id int32) {
	for i, r := range s.ready {
		if r == id {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			return
		}
	}
}

// sortedNames maps IDs to names and sorts — the string-API boundary.
func (s *Scheduler) sortedNames(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = s.c.Name(id)
	}
	sort.Strings(out)
	return out
}
