// Package dag implements a generic directed acyclic graph used to model
// scientific workflows: tasks are vertices and data/control dependencies
// are edges. It provides the operations the workflow manager and the
// characterization tooling need — cycle detection, topological ordering,
// level (phase) assignment, critical-path analysis, and transitive
// reduction — without any knowledge of the workflow JSON format.
package dag

import (
	"fmt"
	"sort"
)

// Graph is a directed graph keyed by string vertex IDs. The zero value is
// not ready to use; call New.
type Graph struct {
	// adjacency: vertex -> set of children
	children map[string]map[string]struct{}
	// reverse adjacency: vertex -> set of parents
	parents map[string]map[string]struct{}
	// insertion order, for deterministic iteration
	order []string

	// version is bumped by every mutation; the lazily-built caches
	// below carry the version they were computed at. Scheduler loops
	// call Children/Parents/TopoSort repeatedly on an unchanging graph,
	// so re-sorting fresh slices on every call is pure garbage.
	version     uint64
	topoAt      uint64 // version topo/topoErr were computed at; 0 = never
	topo        []string
	topoErr     error
	viewsAt     uint64 // version the adjacency views were reset at; 0 = never
	childViews  map[string][]string
	parentViews map[string][]string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		children: make(map[string]map[string]struct{}),
		parents:  make(map[string]map[string]struct{}),
		version:  1,
	}
}

// mutated invalidates all derived caches.
func (g *Graph) mutated() { g.version++ }

// AddVertex inserts v if it is not already present.
func (g *Graph) AddVertex(v string) {
	if _, ok := g.children[v]; ok {
		return
	}
	g.children[v] = make(map[string]struct{})
	g.parents[v] = make(map[string]struct{})
	g.order = append(g.order, v)
	g.mutated()
}

// HasVertex reports whether v is in the graph.
func (g *Graph) HasVertex(v string) bool {
	_, ok := g.children[v]
	return ok
}

// AddEdge inserts the edge from -> to, adding missing vertices. Self-edges
// are rejected because a task cannot depend on itself.
func (g *Graph) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("dag: self edge on %q", from)
	}
	g.AddVertex(from)
	g.AddVertex(to)
	g.children[from][to] = struct{}{}
	g.parents[to][from] = struct{}{}
	g.mutated()
	return nil
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to string) bool {
	_, ok := g.children[from][to]
	return ok
}

// RemoveEdge deletes the edge from -> to if present.
func (g *Graph) RemoveEdge(from, to string) {
	delete(g.children[from], to)
	delete(g.parents[to], from)
	g.mutated()
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.order) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, cs := range g.children {
		n += len(cs)
	}
	return n
}

// Vertices returns all vertices in insertion order.
func (g *Graph) Vertices() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Children returns the sorted children of v. The returned slice is a
// cached read-only view — it stays a valid snapshot across later graph
// mutations, but the caller must not modify it.
func (g *Graph) Children(v string) []string {
	g.freshenViews()
	if s, ok := g.childViews[v]; ok {
		return s
	}
	s := sortedKeys(g.children[v])
	g.childViews[v] = s
	return s
}

// Parents returns the sorted parents of v. Cached read-only view; the
// caller must not modify it.
func (g *Graph) Parents(v string) []string {
	g.freshenViews()
	if s, ok := g.parentViews[v]; ok {
		return s
	}
	s := sortedKeys(g.parents[v])
	g.parentViews[v] = s
	return s
}

// freshenViews resets the adjacency view caches after a mutation.
// Slices handed out earlier are abandoned, not cleared, so callers
// iterating them keep a consistent snapshot.
func (g *Graph) freshenViews() {
	if g.viewsAt != g.version {
		g.childViews = make(map[string][]string)
		g.parentViews = make(map[string][]string)
		g.viewsAt = g.version
	}
}

// InDegree returns the number of parents of v.
func (g *Graph) InDegree(v string) int { return len(g.parents[v]) }

// OutDegree returns the number of children of v.
func (g *Graph) OutDegree(v string) int { return len(g.children[v]) }

// Roots returns vertices with no parents, sorted.
func (g *Graph) Roots() []string {
	var out []string
	for _, v := range g.order {
		if len(g.parents[v]) == 0 {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Leaves returns vertices with no children, sorted.
func (g *Graph) Leaves() []string {
	var out []string
	for _, v := range g.order {
		if len(g.children[v]) == 0 {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// CycleError describes a dependency cycle found in a graph.
type CycleError struct {
	// Cycle lists the vertices on one detected cycle, in order.
	Cycle []string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("dag: cycle detected: %v", e.Cycle)
}

// TopoSort returns a topological ordering. Within each level the order is
// lexicographic, so the result is deterministic. It returns a *CycleError
// if the graph has a cycle. The ordering is cached until the next
// mutation; each call returns a fresh copy the caller may keep.
func (g *Graph) TopoSort() ([]string, error) {
	if g.topoAt == g.version {
		if g.topoErr != nil {
			return nil, g.topoErr
		}
		return append([]string(nil), g.topo...), nil
	}
	order, err := g.topoSort()
	g.topo, g.topoErr, g.topoAt = order, err, g.version
	if err != nil {
		return nil, err
	}
	return append([]string(nil), order...), nil
}

func (g *Graph) topoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.order))
	for _, v := range g.order {
		indeg[v] = len(g.parents[v])
	}
	var frontier []string
	for _, v := range g.order {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	sort.Strings(frontier)
	out := make([]string, 0, len(g.order))
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		out = append(out, v)
		next := g.Children(v)
		added := false
		for _, c := range next {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
				added = true
			}
		}
		if added {
			sort.Strings(frontier)
		}
	}
	if len(out) != len(g.order) {
		return nil, &CycleError{Cycle: g.findCycle()}
	}
	return out, nil
}

// findCycle returns one cycle, used to build CycleError. It assumes a
// cycle exists.
func (g *Graph) findCycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.order))
	parent := make(map[string]string)
	var cycle []string
	var dfs func(v string) bool
	dfs = func(v string) bool {
		color[v] = gray
		for _, c := range g.Children(v) {
			switch color[c] {
			case white:
				parent[c] = v
				if dfs(c) {
					return true
				}
			case gray:
				// unwind from v back to c
				cycle = []string{c}
				for x := v; x != c; x = parent[x] {
					cycle = append(cycle, x)
				}
				// reverse to get forward order
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[v] = black
		return false
	}
	for _, v := range g.order {
		if color[v] == white && dfs(v) {
			break
		}
	}
	return cycle
}

// Levels partitions the vertices into topological levels: level 0 contains
// the roots, and every vertex is placed one past its deepest parent. This
// is exactly the "phase" structure the paper's workflow manager executes —
// all functions in a level are invoked simultaneously. Returns a
// *CycleError if the graph has a cycle.
func (g *Graph) Levels() ([][]string, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make(map[string]int, len(order))
	maxLevel := 0
	for _, v := range order {
		l := 0
		for p := range g.parents[v] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[v] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]string, maxLevel+1)
	for _, v := range order {
		out[level[v]] = append(out[level[v]], v)
	}
	for _, lv := range out {
		sort.Strings(lv)
	}
	return out, nil
}

// LevelOf returns a map from vertex to its topological level.
func (g *Graph) LevelOf() (map[string]int, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	m := make(map[string]int, len(g.order))
	for i, lv := range levels {
		for _, v := range lv {
			m[v] = i
		}
	}
	return m, nil
}

// CriticalPath returns the longest path through the DAG where each vertex
// has the given weight, along with its total weight. Vertices missing from
// weights count as zero. Returns a *CycleError on cyclic graphs.
func (g *Graph) CriticalPath(weights map[string]float64) ([]string, float64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	dist := make(map[string]float64, len(order))
	prev := make(map[string]string, len(order))
	best, bestV := -1.0, ""
	for _, v := range order {
		d := weights[v]
		for p := range g.parents[v] {
			if dist[p]+weights[v] > d {
				d = dist[p] + weights[v]
				prev[v] = p
			}
		}
		dist[v] = d
		if d > best {
			best, bestV = d, v
		}
	}
	if bestV == "" {
		return nil, 0, nil
	}
	var path []string
	for v := bestV; ; {
		path = append(path, v)
		p, ok := prev[v]
		if !ok {
			break
		}
		v = p
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best, nil
}

// Ancestors returns all transitive ancestors of v, sorted.
func (g *Graph) Ancestors(v string) []string {
	seen := make(map[string]struct{})
	var walk func(string)
	walk = func(x string) {
		for p := range g.parents[x] {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				walk(p)
			}
		}
	}
	walk(v)
	return sortedKeys(seen)
}

// Descendants returns all transitive descendants of v, sorted.
func (g *Graph) Descendants(v string) []string {
	seen := make(map[string]struct{})
	var walk func(string)
	walk = func(x string) {
		for c := range g.children[x] {
			if _, ok := seen[c]; !ok {
				seen[c] = struct{}{}
				walk(c)
			}
		}
	}
	walk(v)
	return sortedKeys(seen)
}

// TransitiveReduction removes every edge u->v for which another path
// u->...->v exists. Workflow instances sometimes carry redundant edges;
// reduction keeps phase structure identical while minimizing edges.
func (g *Graph) TransitiveReduction() error {
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	for _, u := range g.order {
		for _, v := range g.Children(u) {
			// Is v reachable from u without the direct edge?
			g.RemoveEdge(u, v)
			if g.reachable(u, v) {
				continue // redundant, keep removed
			}
			g.children[u][v] = struct{}{}
			g.parents[v][u] = struct{}{}
			g.mutated()
		}
	}
	return nil
}

// HasPath reports whether to is reachable from from through one or more
// edges. Used by workflow validation to confirm a file's producer is an
// ancestor of its consumer without materializing full ancestor sets.
func (g *Graph) HasPath(from, to string) bool { return g.reachable(from, to) }

// reachable reports whether to is reachable from from.
func (g *Graph) reachable(from, to string) bool {
	stack := []string{from}
	seen := map[string]struct{}{from: {}}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range g.children[v] {
			if c == to {
				return true
			}
			if _, ok := seen[c]; !ok {
				seen[c] = struct{}{}
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	n := New()
	for _, v := range g.order {
		n.AddVertex(v)
	}
	for _, v := range g.order {
		for c := range g.children[v] {
			n.children[v][c] = struct{}{}
			n.parents[c][v] = struct{}{}
		}
	}
	return n
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
