// Package model is an analytical performance model of the framework: it
// predicts, from first principles and without executing anything, the
// makespan, cold-start count, and mean resource usage of a workflow
// under a Table II paradigm. The paper motivates exactly this kind of
// "analysis of workflow configurations to identify commonalities and
// differences" — a closed-form model makes the measured behaviour
// explainable and lets users size platforms before running.
//
// The model reproduces the platform mechanics: per-phase demand sets a
// desired pod count, pods ramp by doubling per autoscaler tick with one
// cold start per wave, workers bound per-phase rounds, pods outlive
// phases by the stable window, and the always-on baseline holds its
// full reservation for the whole run. Validation tests check the
// predictions against actual RunWorkflow measurements.
package model

import (
	"fmt"
	"math"

	"wfserverless/internal/experiments"
	"wfserverless/internal/wfformat"
)

// Prediction is the model output, in the same units as
// experiments.Measurement.
type Prediction struct {
	MakespanS    float64
	ColdStarts   int
	MeanCPUCores float64
	MeanMemGB    float64
	// PhaseTimes are the predicted per-phase durations (nominal s).
	PhaseTimes []float64
}

// phaseInfo is the per-phase demand extracted from the workflow.
type phaseInfo struct {
	width   int
	maxWall float64 // longest task wall time in the phase (stragglers)
}

func phaseInfos(w *wfformat.Workflow) ([]phaseInfo, error) {
	phases, err := w.Phases()
	if err != nil {
		return nil, err
	}
	out := make([]phaseInfo, len(phases))
	for i, phase := range phases {
		pi := phaseInfo{width: len(phase)}
		for _, name := range phase {
			arg := w.Tasks[name].Command.Arguments[0]
			busy := arg.CPUWork / 100
			duty := arg.PercentCPU
			if duty < 0.05 {
				duty = 0.05
			}
			if wall := busy / duty; wall > pi.maxWall {
				pi.maxWall = wall
			}
		}
		out[i] = pi
	}
	return out, nil
}

// Predict models the workflow under the paradigm. Only the fine-grained
// and coarse-grained paradigms of Table II are supported.
func Predict(spec experiments.Spec, w *wfformat.Workflow, tn experiments.Tunables) (*Prediction, error) {
	infos, err := phaseInfos(w)
	if err != nil {
		return nil, err
	}
	const (
		clusterCores = 96.0
		gb           = float64(int64(1) << 30)
	)
	switch spec.Kind {
	case experiments.KindKnative:
		return predictKnative(spec, infos, tn, clusterCores, gb)
	case experiments.KindLocal:
		return predictLocal(spec, infos, tn, clusterCores, gb)
	}
	return nil, fmt.Errorf("model: unsupported platform kind %q", spec.Kind)
}

func predictKnative(spec experiments.Spec, infos []phaseInfo, tn experiments.Tunables, clusterCores, gb float64) (*Prediction, error) {
	W := float64(spec.Workers)
	cpuPerPod := W * tn.CPURequestPerWorker
	memPerPod := float64(tn.PodOverheadMem) + W*float64(tn.WorkerOverheadMem)
	maxPods := math.Floor(clusterCores / cpuPerPod)
	if spec.Coarse {
		// One pre-provisioned whole-machine pod: no cold start, no
		// scaling; phase time is bounded by worker rounds only.
		p := &Prediction{ColdStarts: 1}
		var makespan float64
		for i, pi := range infos {
			rounds := math.Ceil(float64(pi.width) / W)
			pt := rounds * pi.maxWall
			p.PhaseTimes = append(p.PhaseTimes, pt)
			makespan += pt
			if i < len(infos)-1 {
				makespan += tn.PhaseDelay
			}
		}
		p.MakespanS = makespan
		p.MeanCPUCores = 46 // the reserved node
		p.MeanMemGB = (float64(tn.PodOverheadMem) + 1000*float64(tn.WorkerOverheadMem)) / gb
		return p, nil
	}

	pods := 0.0 // warm pods carried across phases
	coldStarts := 0.0
	var makespan float64
	var phaseTimes []float64
	// pod-seconds and mem-second integrals for resource means
	var cpuIntegral, memIntegral float64

	for i, pi := range infos {
		desired := math.Ceil(float64(pi.width) / W)
		if desired > maxPods {
			desired = maxPods
		}
		if desired < 1 {
			desired = 1
		}
		// Ramp by doubling per tick from the current warm count.
		ramp := 0.0
		cur := pods
		if cur < 1 {
			cur = 1
			if pods == 0 {
				ramp += tn.AutoscalePeriod // first tick creates pod #1
			}
		}
		ticks := 0.0
		for c := cur; c < desired; c = c * 2 {
			ticks++
		}
		ramp += ticks * tn.AutoscalePeriod
		if desired > pods {
			ramp += tn.ColdStart // the last wave's cold start gates the stragglers
			coldStarts += desired - pods
		}
		rounds := math.Ceil(float64(pi.width) / (desired * W))
		work := rounds * pi.maxWall
		pt := ramp + work
		phaseTimes = append(phaseTimes, pt)

		// Pods accumulate during the ramp (average of warm count and
		// target) and hold at `desired` during the work window.
		podSeconds := (pods+desired)/2*ramp + desired*work
		cpuIntegral += cpuPerPod * podSeconds
		memIntegral += memPerPod * podSeconds

		makespan += pt
		if i < len(infos)-1 {
			makespan += tn.PhaseDelay
			// Pods stay warm across the inter-phase delay (the gap is
			// shorter than the stable window with default tunables).
			cpuIntegral += desired * cpuPerPod * tn.PhaseDelay
			memIntegral += desired * memPerPod * tn.PhaseDelay
		}
		pods = desired
	}
	// After the last phase the final pods linger for the stable window,
	// but measurement stops at workflow end; nothing to add.
	p := &Prediction{
		MakespanS:    makespan,
		ColdStarts:   int(coldStarts),
		PhaseTimes:   phaseTimes,
		MeanCPUCores: cpuIntegral / makespan,
		MeanMemGB:    memIntegral / makespan / gb,
	}
	return p, nil
}

func predictLocal(spec experiments.Spec, infos []phaseInfo, tn experiments.Tunables, clusterCores, gb float64) (*Prediction, error) {
	containers := float64(tn.LCContainers)
	if spec.Coarse {
		containers = 1
	}
	totalWorkers := containers * float64(spec.Workers)
	var makespan float64
	var phaseTimes []float64
	for i, pi := range infos {
		rounds := math.Ceil(float64(pi.width) / totalWorkers)
		pt := rounds * pi.maxWall
		phaseTimes = append(phaseTimes, pt)
		makespan += pt
		if i < len(infos)-1 {
			makespan += tn.PhaseDelay
		}
	}
	p := &Prediction{
		MakespanS:  makespan,
		PhaseTimes: phaseTimes,
	}
	switch {
	case spec.Coarse:
		p.MeanCPUCores = 46
	case spec.CR:
		p.MeanCPUCores = containers * tn.LCCPUsPerContainer
	default:
		// NoCR: only actual busy cores count; approximate by total
		// busy-core-seconds over the makespan.
		var busy float64
		for _, pi := range infos {
			busy += float64(pi.width) * 0.9 * pi.maxWall // duty ~0.9
		}
		p.MeanCPUCores = busy / makespan
		if p.MeanCPUCores > clusterCores {
			p.MeanCPUCores = clusterCores
		}
	}
	memPerContainer := float64(tn.PodOverheadMem) + float64(spec.Workers)*float64(tn.WorkerOverheadMem)
	p.MeanMemGB = containers * memPerContainer / gb
	return p, nil
}
