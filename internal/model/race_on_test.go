//go:build race

package model

// raceTimeFactor stretches validation time scales under the race
// detector, whose overhead inflates measured makespans.
const raceTimeFactor = 5.0
