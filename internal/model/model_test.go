package model

import (
	"context"
	"testing"

	"wfserverless/internal/experiments"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfgen"
)

func genWF(t *testing.T, recipe string, size int) *wfformat.Workflow {
	t.Helper()
	w, err := wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: size, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// within asserts |got-want| <= tol*want.
func within(t *testing.T, label string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", label)
	}
	ratio := got / want
	if ratio < 1-tol || ratio > 1+tol {
		t.Errorf("%s: predicted %.2f vs measured %.2f (ratio %.2f, tol ±%.0f%%)",
			label, got, want, ratio, tol*100)
	}
}

// TestPredictionMatchesMeasurementKnative validates the analytical model
// against actual platform runs for the headline serverless paradigm.
func TestPredictionMatchesMeasurementKnative(t *testing.T) {
	tn := experiments.DefaultTunables()
	tn.TimeScale = 0.02 * raceTimeFactor
	spec, _ := experiments.ByID(experiments.Kn10wNoPM)
	for _, tc := range []struct {
		recipe string
		size   int
	}{
		{"blast", 100},
		{"epigenomics", 80},
		{"seismology", 100},
	} {
		w := genWF(t, tc.recipe, tc.size)
		pred, err := Predict(spec, w, tn)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := experiments.RunWorkflow(context.Background(), spec, w, tn)
		if err != nil {
			t.Fatal(err)
		}
		within(t, tc.recipe+" makespan", pred.MakespanS, meas.MakespanS, 0.45)
		within(t, tc.recipe+" cpu", pred.MeanCPUCores, meas.MeanCPUCores, 0.6)
		if pred.ColdStarts == 0 {
			t.Errorf("%s: predicted zero cold starts", tc.recipe)
		}
	}
}

// TestPredictionMatchesMeasurementLocal validates the baseline model.
func TestPredictionMatchesMeasurementLocal(t *testing.T) {
	tn := experiments.DefaultTunables()
	tn.TimeScale = 0.02 * raceTimeFactor
	spec, _ := experiments.ByID(experiments.LC10wNoPM)
	w := genWF(t, "blast", 100)
	pred, err := Predict(spec, w, tn)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := experiments.RunWorkflow(context.Background(), spec, w, tn)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "makespan", pred.MakespanS, meas.MakespanS, 0.45)
	// CR baseline: reservation is exact.
	within(t, "cpu", pred.MeanCPUCores, meas.MeanCPUCores, 0.05)
	within(t, "mem", pred.MeanMemGB, meas.MeanMemGB, 0.25)
}

// TestModelReproducesHeadlineDirection: without running anything, the
// model must predict that serverless saves most CPU and memory while
// being slower — the paper's Figure 7 direction.
func TestModelReproducesHeadlineDirection(t *testing.T) {
	tn := experiments.DefaultTunables()
	kn, _ := experiments.ByID(experiments.Kn10wNoPM)
	lc, _ := experiments.ByID(experiments.LC10wNoPM)
	w := genWF(t, "blast", 200)
	pk, err := Predict(kn, w, tn)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Predict(lc, w, tn)
	if err != nil {
		t.Fatal(err)
	}
	if pk.MakespanS <= pl.MakespanS {
		t.Errorf("model: serverless %.1fs not slower than LC %.1fs", pk.MakespanS, pl.MakespanS)
	}
	if pk.MeanCPUCores >= pl.MeanCPUCores*0.6 {
		t.Errorf("model: CPU saving too small: kn=%.1f lc=%.1f", pk.MeanCPUCores, pl.MeanCPUCores)
	}
	if pk.MeanMemGB >= pl.MeanMemGB*0.6 {
		t.Errorf("model: memory saving too small: kn=%.2f lc=%.2f", pk.MeanMemGB, pl.MeanMemGB)
	}
}

// TestModelGroup2NarrowerGap: the model must also reproduce the group
// split analytically.
func TestModelGroup2NarrowerGap(t *testing.T) {
	tn := experiments.DefaultTunables()
	kn, _ := experiments.ByID(experiments.Kn10wNoPM)
	lc, _ := experiments.ByID(experiments.LC10wNoPM)
	ratio := func(recipe string) float64 {
		w := genWF(t, recipe, 120)
		pk, err := Predict(kn, w, tn)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := Predict(lc, w, tn)
		if err != nil {
			t.Fatal(err)
		}
		return pk.MakespanS / pl.MakespanS
	}
	dense := ratio("blast")
	spread := ratio("epigenomics")
	if spread >= dense {
		t.Errorf("model ratios: blast=%.2f epigenomics=%.2f; group 2 should be narrower", dense, spread)
	}
}

func TestPredictCoarse(t *testing.T) {
	tn := experiments.DefaultTunables()
	knC, _ := experiments.ByID(experiments.Kn1000wPM)
	lcC, _ := experiments.ByID(experiments.LC1000wPM)
	w := genWF(t, "seismology", 100)
	pk, err := Predict(knC, w, tn)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Predict(lcC, w, tn)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse: both reserve a whole node; times converge.
	if pk.MeanCPUCores != 46 || pl.MeanCPUCores != 46 {
		t.Fatalf("coarse CPU: kn=%v lc=%v", pk.MeanCPUCores, pl.MeanCPUCores)
	}
	r := pk.MakespanS / pl.MakespanS
	if r < 0.95 || r > 1.3 {
		t.Fatalf("coarse ratio = %.2f", r)
	}
	if pk.ColdStarts != 1 {
		t.Fatalf("coarse cold starts = %d", pk.ColdStarts)
	}
}

func TestPredictPhaseTimesSumToMakespan(t *testing.T) {
	tn := experiments.DefaultTunables()
	spec, _ := experiments.ByID(experiments.LC10wNoPM)
	w := genWF(t, "cycles", 80)
	p, err := Predict(spec, w, tn)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, pt := range p.PhaseTimes {
		sum += pt
	}
	delays := float64(len(p.PhaseTimes)-1) * tn.PhaseDelay
	if diff := p.MakespanS - sum - delays; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phase times + delays != makespan: %v", diff)
	}
}

func TestPredictInvalidWorkflow(t *testing.T) {
	tn := experiments.DefaultTunables()
	spec, _ := experiments.ByID(experiments.Kn10wNoPM)
	w := wfformat.New("bad")
	w.AddTask(&wfformat.Task{Name: "a", Type: wfformat.TypeCompute, Cores: 1,
		Command: wfformat.Command{Arguments: []wfformat.Argument{{Name: "a"}}}})
	w.AddTask(&wfformat.Task{Name: "b", Type: wfformat.TypeCompute, Cores: 1,
		Command: wfformat.Command{Arguments: []wfformat.Argument{{Name: "b"}}}})
	w.Link("a", "b")
	w.Link("b", "a") // cycle
	if _, err := Predict(spec, w, tn); err == nil {
		t.Fatal("cyclic workflow predicted")
	}
}
