package memo

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testFP(i int) (fp [32]byte) {
	fp[0] = byte(i)
	fp[1] = byte(i >> 8)
	fp[31] = 0xAB
	return fp
}

func testOuts(i int) []Output {
	return []Output{
		{Name: fmt.Sprintf("out_%04d", i), Size: int64(10 + i), Hash: uint64(1000 + i)},
		{Name: fmt.Sprintf("aux_%04d", i), Size: 3, Hash: uint64(2000 + i)},
	}
}

func openTemp(t *testing.T) (*Cache, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "memo.cache")
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return c, path
}

func TestRoundTrip(t *testing.T) {
	c, path := openTemp(t)
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Put(testFP(i), testOuts(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), n)
	}
	if _, repaired := re.Recovered(); repaired {
		t.Fatal("clean file reported repaired")
	}
	for i := 0; i < n; i++ {
		outs, ok := re.Lookup(testFP(i))
		if !ok {
			t.Fatalf("entry %d missing after reopen", i)
		}
		want := testOuts(i)
		if len(outs) != len(want) {
			t.Fatalf("entry %d: %d outputs, want %d", i, len(outs), len(want))
		}
		for k := range outs {
			if outs[k] != want[k] {
				t.Fatalf("entry %d output %d = %+v, want %+v", i, k, outs[k], want[k])
			}
		}
	}
}

func TestReopenAppend(t *testing.T) {
	c, path := openTemp(t)
	c.Put(testFP(1), testOuts(1))
	c.Close()
	c2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c2.Put(testFP(2), testOuts(2))
	c2.Close()
	c3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 2 {
		t.Fatalf("Len = %d after reopen-append-reopen, want 2", c3.Len())
	}
}

func TestDuplicatePutLastWins(t *testing.T) {
	c, path := openTemp(t)
	c.Put(testFP(1), testOuts(1))
	c.Put(testFP(1), testOuts(7)) // changed manifest, same fingerprint
	c.Put(testFP(1), testOuts(7)) // identical: must not grow the file
	c.Close()
	before, _ := os.Stat(path)
	c2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c2.Put(testFP(1), testOuts(7))
	c2.Close()
	after, _ := os.Stat(path)
	if after.Size() != before.Size() {
		t.Fatalf("identical re-Put grew file: %d -> %d", before.Size(), after.Size())
	}
	c3, _ := Open(path)
	defer c3.Close()
	outs, ok := c3.Lookup(testFP(1))
	if !ok || outs[0] != testOuts(7)[0] {
		t.Fatalf("last write did not win: %+v", outs)
	}
}

// TestCorruptionNeverWrongHit is the satellite property: for a byte
// flip anywhere in the file, Open succeeds and every surviving entry
// is exactly what was written — corruption costs entries, never
// corrupts them.
func TestCorruptionNeverWrongHit(t *testing.T) {
	c, path := openTemp(t)
	const n = 8
	for i := 0; i < n; i++ {
		c.Put(testFP(i), testOuts(i))
	}
	c.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(clean); pos++ {
		data := append([]byte(nil), clean...)
		data[pos] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(path)
		if err != nil {
			t.Fatalf("flip at %d: Open: %v", pos, err)
		}
		for i := 0; i < n; i++ {
			outs, ok := re.Lookup(testFP(i))
			if !ok {
				continue // dropped: acceptable
			}
			want := testOuts(i)
			for k := range want {
				if k >= len(outs) || outs[k] != want[k] {
					t.Fatalf("flip at %d: entry %d survived with wrong content: %+v", pos, i, outs)
				}
			}
		}
		re.Close()
	}
}

// TestTruncationColdTail: every possible truncation point yields a
// usable cache holding a valid prefix of the entries, and the repaired
// file accepts new appends.
func TestTruncationColdTail(t *testing.T) {
	c, path := openTemp(t)
	const n = 5
	for i := 0; i < n; i++ {
		c.Put(testFP(i), testOuts(i))
	}
	c.Close()
	clean, _ := os.ReadFile(path)
	for cut := 0; cut < len(clean); cut++ {
		if err := os.WriteFile(path, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		got := re.Len()
		// Entries must form a prefix: if entry i survives, so do all
		// entries before it (they were appended in order).
		for i := 0; i < got; i++ {
			if _, ok := re.Lookup(testFP(i)); !ok {
				t.Fatalf("cut at %d: %d entries but entry %d missing (not a prefix)", cut, got, i)
			}
		}
		if err := re.Put(testFP(100+cut), testOuts(0)); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut at %d: close after repair: %v", cut, err)
		}
		re2, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: reopen after repair: %v", cut, err)
		}
		if _, ok := re2.Lookup(testFP(100 + cut)); !ok {
			t.Fatalf("cut at %d: entry appended after repair lost", cut)
		}
		re2.Close()
	}
}

func TestForeignFileColdCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.cache")
	if err := os.WriteFile(path, []byte("this is not a memo cache file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != 0 {
		t.Fatalf("foreign file yielded %d entries", c.Len())
	}
	if dropped, repaired := c.Recovered(); !repaired || dropped == 0 {
		t.Fatalf("foreign file not reported repaired (dropped=%d, repaired=%v)", dropped, repaired)
	}
	if err := c.Put(testFP(1), testOuts(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("Len = %d after rewriting foreign file, want 1", re.Len())
	}
}

func TestConcurrentPutLookup(t *testing.T) {
	c, path := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Put(testFP(g*100+i), testOuts(i))
				c.Lookup(testFP(i))
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 800 {
		t.Fatalf("Len = %d after concurrent puts, want 800", re.Len())
	}
}
