// Package memo implements the durable content-addressed result cache
// behind the manager's incremental re-execution mode: a mapping from
// task fingerprint (wfformat.TaskFingerprints) to the output-file
// manifest the task produced, persisted as an append-only CRC-checked
// record file beside the journal and indexed in memory for O(1)
// lookups on the probe path.
//
// Durability model: appends are buffered and flushed on Sync/Close, so
// a crash can lose the most recent entries — never corrupt older ones.
// That is the right trade for a cache: the journal (internal/journal)
// is the intra-run durability story; the memo file only has to be
// trustworthy, not complete. On Open, any corruption — bad magic, a
// torn tail, a CRC mismatch, an undecodable payload — demotes the file
// to the last provably-good prefix (worst case: a cold cache). A
// corrupt file can therefore cost re-execution but never produce a
// wrong hit.
package memo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// magic identifies a memo cache file; the trailing digit is the format
// version.
const magic = "WFMEMO1\n"

// maxRecord bounds one record's payload so a corrupt length prefix
// cannot drive a huge allocation.
const maxRecord = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Output is one recorded output product of a memoized task: the name
// and size the task declared, and the content address the shared drive
// reported after the task published it.
type Output struct {
	Name string
	Size int64
	// Hash is the sharedfs content address; zero means the producing
	// run's drive could not report one, and verification degrades to an
	// existence check.
	Hash uint64
}

// Cache is a durable fingerprint → output-manifest map. All methods
// are safe for concurrent use.
type Cache struct {
	mu      sync.RWMutex
	path    string
	f       *os.File
	w       *bufio.Writer
	index   map[[32]byte][]Output
	scratch []byte
	failed  error // first append/flush error, sticky
	closed  bool

	recovered    bool
	droppedBytes int64
}

// Open loads (or creates) the cache file at path. Corrupt or foreign
// content never fails Open: the file is truncated back to its longest
// valid prefix — an unrecognizable file becomes a cold cache — and the
// repair is reported by Recovered.
func Open(path string) (*Cache, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("memo: %w", err)
	}
	c := &Cache{path: path, index: make(map[[32]byte][]Output)}
	good := c.load(data)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("memo: %w", err)
	}
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("memo: truncating corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("memo: %w", err)
	}
	c.f = f
	c.w = bufio.NewWriterSize(f, 64<<10)
	if good == 0 {
		if _, err := c.w.WriteString(magic); err != nil {
			f.Close()
			return nil, fmt.Errorf("memo: %w", err)
		}
	}
	return c, nil
}

// load replays data into the index and returns the byte offset of the
// longest valid prefix (0 when even the magic is wrong).
func (c *Cache) load(data []byte) int64 {
	if len(data) == 0 {
		return 0
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		c.recovered = true
		c.droppedBytes = int64(len(data))
		return 0
	}
	off := len(magic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			break
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n <= 0 || n > maxRecord || len(rest) < 4+n+4 {
			break
		}
		payload := rest[4 : 4+n]
		crc := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		fp, outs, ok := decodeEntry(payload)
		if !ok {
			break
		}
		c.index[fp] = outs // duplicate fingerprints: last record wins
		off += 4 + n + 4
	}
	if off < len(data) {
		c.recovered = true
		c.droppedBytes = int64(len(data) - off)
	}
	return int64(off)
}

func decodeEntry(b []byte) (fp [32]byte, outs []Output, ok bool) {
	if len(b) < len(fp) {
		return fp, nil, false
	}
	copy(fp[:], b)
	b = b[len(fp):]
	cnt, n := binary.Uvarint(b)
	if n <= 0 || cnt > maxRecord {
		return fp, nil, false
	}
	b = b[n:]
	outs = make([]Output, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		nameLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < nameLen {
			return fp, nil, false
		}
		name := string(b[n : n+int(nameLen)])
		b = b[n+int(nameLen):]
		size, n := binary.Uvarint(b)
		if n <= 0 {
			return fp, nil, false
		}
		b = b[n:]
		hash, n := binary.Uvarint(b)
		if n <= 0 {
			return fp, nil, false
		}
		b = b[n:]
		outs = append(outs, Output{Name: name, Size: int64(size), Hash: hash})
	}
	return fp, outs, len(b) == 0
}

func appendEntry(b []byte, fp [32]byte, outs []Output) []byte {
	b = append(b, fp[:]...)
	b = binary.AppendUvarint(b, uint64(len(outs)))
	for _, o := range outs {
		b = binary.AppendUvarint(b, uint64(len(o.Name)))
		b = append(b, o.Name...)
		b = binary.AppendUvarint(b, uint64(o.Size))
		b = binary.AppendUvarint(b, o.Hash)
	}
	return b
}

// Lookup returns the output manifest recorded for fp. The returned
// slice is shared and must not be mutated.
func (c *Cache) Lookup(fp [32]byte) ([]Output, bool) {
	c.mu.RLock()
	outs, ok := c.index[fp]
	c.mu.RUnlock()
	return outs, ok
}

// Len returns the number of distinct fingerprints cached.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.index)
}

// Put records fp → outs, appending a record to the file (buffered; see
// Sync) unless an identical entry is already cached. Write errors are
// sticky and also reported by Err — a sick disk degrades the cache to
// in-memory, it does not fail the run.
func (c *Cache) Put(fp [32]byte, outs []Output) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.index[fp]; ok && sameOutputs(prev, outs) {
		return c.failed
	}
	c.index[fp] = append([]Output(nil), outs...)
	c.scratch = appendEntry(c.scratch[:0], fp, c.index[fp])
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(c.scratch)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(c.scratch, castagnoli))
	if c.failed == nil {
		_, err := c.w.Write(hdr[:])
		if err == nil {
			_, err = c.w.Write(c.scratch)
		}
		if err == nil {
			_, err = c.w.Write(crc[:])
		}
		if err != nil {
			c.failed = fmt.Errorf("memo: append: %w", err)
		}
	}
	return c.failed
}

func sameOutputs(a, b []Output) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sync flushes buffered appends through to the file system.
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncLocked()
}

func (c *Cache) syncLocked() error {
	if err := c.w.Flush(); err != nil {
		if c.failed == nil {
			c.failed = fmt.Errorf("memo: flush: %w", err)
		}
		return c.failed
	}
	if err := c.f.Sync(); err != nil {
		if c.failed == nil {
			c.failed = fmt.Errorf("memo: sync: %w", err)
		}
		return c.failed
	}
	return c.failed
}

// Close flushes and closes the file. The in-memory index stays usable.
// Closing an already-closed cache is a no-op.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.syncLocked()
	if cerr := c.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("memo: close: %w", cerr)
	}
	return err
}

// Err reports the first append/flush failure, if any.
func (c *Cache) Err() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.failed
}

// Path returns the cache's file path.
func (c *Cache) Path() string { return c.path }

// Recovered reports whether Open found and repaired corruption, and
// how many bytes of unusable tail (or foreign content) were dropped.
func (c *Cache) Recovered() (dropped int64, repaired bool) {
	return c.droppedBytes, c.recovered
}
