package wfmd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfm"
)

// countingStub is a loopback WfBench endpoint that counts invocations
// per task name and publishes outputs to the drive.
type countingStub struct {
	drive sharedfs.Drive
	delay time.Duration

	mu sync.Mutex
	n  map[string]int
}

func newCountingStub(drive sharedfs.Drive, delay time.Duration) (*countingStub, *httptest.Server) {
	cs := &countingStub{drive: drive, delay: delay, n: make(map[string]int)}
	return cs, httptest.NewServer(cs)
}

func (cs *countingStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req wfbench.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.mu.Lock()
	cs.n[req.Name]++
	cs.mu.Unlock()
	if cs.delay > 0 {
		time.Sleep(cs.delay)
	}
	for name, size := range req.Out {
		cs.drive.WriteFile(name, size)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&wfbench.Response{Name: req.Name, OK: true})
}

func (cs *countingStub) count(name string) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.n[name]
}

func (cs *countingStub) total() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	t := 0
	for _, n := range cs.n {
		t += n
	}
	return t
}

// fanoutWorkflow builds a root + (tasks-1) children DAG whose task and
// output names carry prefix, so concurrent runs on one shared drive
// never collide.
func fanoutWorkflow(t *testing.T, prefix string, tasks int, url string) []byte {
	t.Helper()
	w := wfformat.New(prefix)
	name := func(i int) string { return fmt.Sprintf("%s_t%04d", prefix, i) }
	out := func(i int) string { return fmt.Sprintf("%s_out%04d", prefix, i) }
	mk := func(i int, parent int) *wfformat.Task {
		files := []wfformat.File{{Link: wfformat.LinkOutput, Name: out(i), SizeInBytes: 1}}
		var inputs []string
		if parent >= 0 {
			inputs = []string{out(parent)}
			files = append(files, wfformat.File{Link: wfformat.LinkInput, Name: out(parent), SizeInBytes: 1})
		}
		return &wfformat.Task{
			Name: name(i),
			Type: wfformat.TypeCompute,
			Command: wfformat.Command{
				Program: "wfbench",
				Arguments: []wfformat.Argument{{
					Name:   name(i),
					Out:    map[string]int64{out(i): 1},
					Inputs: inputs,
				}},
				APIURL: url,
			},
			Files:            files,
			RuntimeInSeconds: 0.001,
			Cores:            1,
			Category:         "svc",
		}
	}
	if err := w.AddTask(mk(0, -1)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tasks; i++ {
		if err := w.AddTask(mk(i, 0)); err != nil {
			t.Fatal(err)
		}
		if err := w.Link(name(0), name(i)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testConfig(t *testing.T, drive sharedfs.Drive) Config {
	t.Helper()
	return Config{
		DataDir: t.TempDir(),
		Manager: wfm.Options{
			Drive:       drive,
			TimeScale:   0.001,
			MaxParallel: 32,
			Scheduling:  wfm.ScheduleDependency,
			InputWait:   5000,
		},
		DefaultTenant: TenantConfig{Weight: 1, MaxConcurrentRuns: 8},
		QueueCapacity: 64,
		MaxActiveRuns: 32,
		TaskSlots:     32,
		RetryAfter:    0.01,
	}
}

// TestLifecycleOverHTTP exercises the full wire path: submit via the
// Client, watch live status, fetch the result, list runs, scrape
// metrics.
func TestLifecycleOverHTTP(t *testing.T) {
	drive := sharedfs.NewMem()
	_, stub := newCountingStub(drive, 0)
	defer stub.Close()
	srv, err := New(testConfig(t, drive))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	api := httptest.NewServer(srv.Handler())
	defer api.Close()

	c := &Client{BaseURL: api.URL, Tenant: "team-a", Priority: "high"}
	ctx := context.Background()
	st, err := c.Submit(ctx, fanoutWorkflow(t, "life", 8, stub.URL))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh run state %q", st.State)
	}
	if st.Tenant != "team-a" || st.Priority != "high" || st.Tasks != 8 {
		t.Fatalf("submission echoed %+v", st)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateSucceeded || final.Done != 8 {
		t.Fatalf("final %+v, want succeeded with 8 done", final)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 || res.State != StateSucceeded {
		t.Fatalf("result %+v", res)
	}
	list, err := c.List(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}
	// Metrics surface: per-tenant families present on /metrics.
	resp, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`wfmd_runs_accepted_total{tenant="team-a"} 1`,
		`wfmd_runs_completed_total{tenant="team-a",state="succeeded"} 1`,
		"wfmd_queue_depth",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// Healthz from the shared telemetry mux.
	hres, err := http.Get(api.URL + "/healthz")
	if err != nil || hres.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hres)
	}
	hres.Body.Close()
}

// TestBadSubmissions pins the 400 paths: junk JSON, valid JSON with no
// api_url, and unknown runs 404.
func TestBadSubmissions(t *testing.T) {
	drive := sharedfs.NewMem()
	srv, err := New(testConfig(t, drive))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	api := httptest.NewServer(srv.Handler())
	defer api.Close()

	post := func(body string) int {
		resp, err := http.Post(api.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("junk JSON: %d", code)
	}
	w := wfformat.New("no-url")
	w.AddTask(&wfformat.Task{Name: "t", Type: wfformat.TypeCompute,
		Command: wfformat.Command{Program: "wfbench"}})
	data, _ := w.Marshal()
	if code := post(string(data)); code != http.StatusBadRequest {
		t.Fatalf("no api_url: %d", code)
	}
	resp, err := http.Get(api.URL + "/v1/runs/r-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d", resp.StatusCode)
	}
}

// TestBackpressure fills the admission queue and checks overflow gets
// 429 + Retry-After, and that the Client's retry loop eventually lands
// the submission once the queue drains.
func TestBackpressure(t *testing.T) {
	drive := sharedfs.NewMem()
	stub429, stubSrv := newCountingStub(drive, 30*time.Millisecond)
	_ = stub429
	defer stubSrv.Close()
	cfg := testConfig(t, drive)
	cfg.QueueCapacity = 1
	cfg.MaxActiveRuns = 1
	cfg.DefaultTenant.MaxConcurrentRuns = 1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	api := httptest.NewServer(srv.Handler())
	defer api.Close()

	// Raw submissions, no retry: the first is admitted (starts
	// running), the second queues, the third must bounce.
	var rejected *http.Response
	for i := 0; i < 3; i++ {
		body := fanoutWorkflow(t, fmt.Sprintf("bp%d", i), 6, stubSrv.URL)
		resp, err := http.Post(api.URL+"/v1/runs?tenant=bp", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: %d", i, resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("queue never overflowed")
	}
	ra := rejected.Header.Get("Retry-After")
	rejected.Body.Close()
	if wfm.ParseRetryAfter(ra) <= 0 {
		t.Fatalf("429 without usable Retry-After %q", ra)
	}
	// The Client keeps retrying on the backoff schedule and must get
	// in once earlier runs finish.
	c := &Client{BaseURL: api.URL, Tenant: "bp", RetryBackoff: 0.01, RetryBackoffMax: 0.1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, fanoutWorkflow(t, "bp-retry", 4, stubSrv.URL))
	if err != nil {
		t.Fatalf("retried submission never accepted: %v", err)
	}
	if fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || fin.State != StateSucceeded {
		t.Fatalf("retried run: %+v %v", fin, err)
	}
}

// TestCancel covers both cancellation paths: a running run and a
// queued run.
func TestCancel(t *testing.T) {
	drive := sharedfs.NewMem()
	_, stub := newCountingStub(drive, 50*time.Millisecond)
	defer stub.Close()
	cfg := testConfig(t, drive)
	cfg.MaxActiveRuns = 1
	cfg.DefaultTenant.MaxConcurrentRuns = 1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	running, err := srv.Submit("c", "", fanoutWorkflow(t, "cxl-run", 16, stub.URL))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit("c", "", fanoutWorkflow(t, "cxl-q", 4, stub.URL))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range []string{running.ID, queued.ID} {
		for {
			st, err := srv.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if IsTerminal(st.State) {
				if st.State != StateCancelled {
					t.Fatalf("run %s ended %q, want cancelled", id, st.State)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("run %s never terminal", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestRestartResume aborts the daemon mid-run (journal tails dropped,
// like SIGKILL) and checks a new server on the same data dir resumes
// every incomplete run to completion with zero duplicate invocations
// of journal-recovered tasks.
func TestRestartResume(t *testing.T) {
	drive := sharedfs.NewMem()
	stub, stubSrv := newCountingStub(drive, 2*time.Millisecond)
	defer stubSrv.Close()
	cfg := testConfig(t, drive)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const runs, tasks = 3, 24
	ids := make([]string, runs)
	for i := range ids {
		st, err := srv.Submit("r", "", fanoutWorkflow(t, fmt.Sprintf("res%d", i), tasks, stubSrv.URL))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	// Let roughly a third of the work complete, then crash.
	deadline := time.Now().Add(10 * time.Second)
	for stub.total() < runs*tasks/3 {
		if time.Now().After(deadline) {
			t.Fatal("stub never saw enough invocations")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.Abort()

	// What the journals say completed before the crash is exactly what
	// resume must not re-invoke. Task IDs map to sorted task names.
	preCounts := make(map[string]int)
	recorded := make(map[string]bool)
	for i, id := range ids {
		w, err := wfformat.Load(cfg.DataDir + "/runs/" + id + "/workflow.json")
		if err != nil {
			t.Fatal(err)
		}
		names := w.TaskNames()
		sum, err := wfm.ReadRunJournal(cfg.DataDir + "/runs/" + id + "/journal")
		if err != nil {
			continue // run never opened its journal before the crash
		}
		for _, tid := range sum.CompletedIDs {
			recorded[names[tid]] = true
		}
		_ = i
	}
	for name := range recorded {
		preCounts[name] = stub.count(name)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Stop()
	deadline = time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			st, err := srv2.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == StateSucceeded {
				break
			}
			if IsTerminal(st.State) {
				t.Fatalf("run %s ended %q after restart", id, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("run %s never completed after restart", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	dups := 0
	for name, pre := range preCounts {
		if got := stub.count(name); got > pre {
			dups++
			t.Errorf("journal-recorded task %s re-invoked: %d → %d", name, pre, got)
		}
	}
	if dups > 0 {
		t.Fatalf("%d duplicate invocations after resume", dups)
	}
	// Results must report recovery, and completed runs stay terminal on
	// yet another restart.
	recoveredTotal := 0
	for _, id := range ids {
		res, err := srv2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != tasks {
			t.Fatalf("run %s completed %d/%d", id, res.Completed, tasks)
		}
		recoveredTotal += res.Recovered
	}
	if len(recorded) > 0 && recoveredTotal == 0 {
		t.Fatalf("journals recorded %d completions but no run reported recovery", len(recorded))
	}
	srv2.Stop()
	srv3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Stop()
	for _, id := range ids {
		st, err := srv3.Status(id)
		if err != nil || st.State != StateSucceeded {
			t.Fatalf("run %s after third boot: %+v %v", id, st, err)
		}
	}
}

// TestGracefulStopResumes checks Stop (clean shutdown) leaves
// interrupted runs resumable: journals closed clean, no terminal
// marker, next boot re-admits and completes them.
func TestGracefulStopResumes(t *testing.T) {
	drive := sharedfs.NewMem()
	stub, stubSrv := newCountingStub(drive, 5*time.Millisecond)
	defer stubSrv.Close()
	cfg := testConfig(t, drive)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Submit("g", "", fanoutWorkflow(t, "grace", 32, stubSrv.URL))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for stub.total() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.Stop()

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Stop()
	fin, err := (&Client{}).waitOn(srv2, st.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateSucceeded {
		t.Fatalf("resumed run ended %q", fin.State)
	}
}

// waitOn polls an embedded server directly (no HTTP) until terminal.
func (c *Client) waitOn(s *Server, id string, timeout time.Duration) (*RunStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Status(id)
		if err != nil {
			return nil, err
		}
		if IsTerminal(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("run %s not terminal after %v (state %s)", id, timeout, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
