package wfmd

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testDispatcher(slots int, tenants ...TenantConfig) *dispatcher {
	return newDispatcher(Config{
		Tenants:       tenants,
		DefaultTenant: TenantConfig{Weight: 1, MaxConcurrentRuns: 4},
		QueueCapacity: 64,
		MaxActiveRuns: 64,
		TaskSlots:     slots,
	})
}

// TestFairShareRatio drives two saturating tenants with weights 3:1
// through the task gate and checks grant counts converge to the
// weights.
func TestFairShareRatio(t *testing.T) {
	d := testDispatcher(4,
		TenantConfig{Name: "a", Weight: 3},
		TenantConfig{Name: "b", Weight: 1},
	)
	const perTenant = 400
	var wg sync.WaitGroup
	worker := func(tenant string) {
		defer wg.Done()
		g := d.gate(tenant, PriorityNormal)
		for i := 0; i < perTenant; i++ {
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(100 * time.Microsecond)
			g.Release()
		}
	}
	// 8 workers per tenant so both tenants always have waiters: every
	// grant is contested and the weights fully bind.
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go worker("a")
		go worker("b")
	}
	wg.Wait()
	stats := d.stats()
	var a, b TenantStats
	for _, s := range stats {
		switch s.Tenant {
		case "a":
			a = s
		case "b":
			b = s
		}
	}
	if a.TasksDispatched != 8*perTenant || b.TasksDispatched != 8*perTenant {
		t.Fatalf("dispatched a=%d b=%d, want %d each", a.TasksDispatched, b.TasksDispatched, 8*perTenant)
	}
	if a.ContestedGrants == 0 || b.ContestedGrants == 0 {
		t.Fatalf("no contention measured: a=%d b=%d", a.ContestedGrants, b.ContestedGrants)
	}
	// Compare the contested-grant ratio over the window where both
	// tenants were demanding. Both submit identical totals, so the
	// faster tenant finishes first; the contested counters isolate the
	// fair-share regime.
	ratio := float64(a.ContestedGrants) / float64(b.ContestedGrants)
	if ratio < 3*0.85 || ratio > 3*1.15 {
		t.Fatalf("contested grant ratio %.2f (a=%d b=%d), want 3.0 ±15%%", ratio, a.ContestedGrants, b.ContestedGrants)
	}
	if a.TaskHighwater > 4 || b.TaskHighwater > 4 {
		t.Fatalf("task highwater a=%d b=%d exceeded %d slots", a.TaskHighwater, b.TaskHighwater, 4)
	}
}

// TestPerTenantTaskCap pins MaxInFlightTasks: a tenant never holds
// more slots than its cap even when the global pool has room.
func TestPerTenantTaskCap(t *testing.T) {
	d := testDispatcher(8, TenantConfig{Name: "capped", Weight: 1, MaxInFlightTasks: 2})
	g := d.gate("capped", PriorityNormal)
	var wg sync.WaitGroup
	var inflight, peak atomic.Int32
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("per-tenant in-flight peak %d, cap is 2", p)
	}
}

// TestPriorityOrderWithinTenant checks a tenant's high-priority
// waiters are granted before its normal ones.
func TestPriorityOrderWithinTenant(t *testing.T) {
	d := testDispatcher(1)
	hold := d.gate("t", PriorityNormal)
	if err := hold.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// With the only slot held, queue one normal then one high waiter.
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(prio Priority, label string) {
		wg.Add(1)
		g := d.gate("t", prio)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
			g.Release()
		}()
	}
	enqueue(PriorityNormal, "normal")
	time.Sleep(20 * time.Millisecond) // ensure FIFO position
	enqueue(PriorityHigh, "high")
	time.Sleep(20 * time.Millisecond)
	hold.Release()
	wg.Wait()
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("grant order %v, want high first", order)
	}
}

// TestAcquireCancellation verifies a cancelled Acquire neither leaks a
// slot nor wedges later grants.
func TestAcquireCancellation(t *testing.T) {
	d := testDispatcher(1)
	g := d.gate("t", PriorityNormal)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		g2 := d.gate("t", PriorityNormal)
		errc <- g2.Acquire(ctx)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled Acquire returned nil")
	}
	g.Release()
	// The slot must be free for the next acquirer.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	g3 := d.gate("t", PriorityNormal)
	if err := g3.Acquire(ctx2); err != nil {
		t.Fatalf("slot leaked after cancellation: %v", err)
	}
	g3.Release()
}

// TestRunQuota pins the run-admission side: per-tenant concurrent-run
// quota holds, excess runs queue, and queue overflow rejects.
func TestRunQuota(t *testing.T) {
	d := newDispatcher(Config{
		Tenants:       []TenantConfig{{Name: "t", Weight: 1, MaxConcurrentRuns: 2}},
		DefaultTenant: TenantConfig{},
		QueueCapacity: 3,
		MaxActiveRuns: 64,
		TaskSlots:     8,
	})
	var mu sync.Mutex
	var running []*run
	d.launch = func(r *run) {
		mu.Lock()
		running = append(running, r)
		mu.Unlock()
	}
	submit := func(id string) error {
		if err := d.reserve("t"); err != nil {
			return err
		}
		d.enqueue(&run{id: id, tenant: "t", priority: PriorityNormal})
		return nil
	}
	for i, id := range []string{"r1", "r2", "r3", "r4", "r5"} {
		if err := submit(id); err != nil {
			t.Fatalf("submission %d rejected early: %v", i, err)
		}
	}
	// Quota 2 running, 3 queued: the queue is now full.
	if err := submit("r6"); err != ErrQueueFull {
		t.Fatalf("6th submission: got %v, want ErrQueueFull", err)
	}
	mu.Lock()
	n := len(running)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("%d runs launched, quota is 2", n)
	}
	// Finishing one run starts exactly one more.
	d.runDone("t")
	mu.Lock()
	n = len(running)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("%d runs launched after one finished, want 3", n)
	}
	st := d.stats()[0]
	if st.RunHighwater != 2 {
		t.Fatalf("run highwater %d, want 2", st.RunHighwater)
	}
	if st.RunsRejected != 1 {
		t.Fatalf("rejected %d, want 1", st.RunsRejected)
	}
}
