// Client is the Go face of the service API, used by `wfm -submit`,
// the service experiments campaign, and anything else that wants
// submit-and-wait semantics. Backpressure handling reuses the wfm
// resilience layer's policy verbatim: a 429/503 with Retry-After is
// slept on (wfm.ParseRetryAfter), anything else backs off with
// full-jitter exponential delays (wfm.BackoffDelay).
package wfmd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"wfserverless/internal/wfm"
)

// Client talks to a running wfmd.
type Client struct {
	// BaseURL is the service root, e.g. http://127.0.0.1:9433.
	BaseURL string
	// Tenant and Priority are attached to every submission.
	Tenant   string
	Priority string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// RetryBackoff/RetryBackoffMax shape the backoff between rejected
	// submissions, in seconds (defaults 0.5 and 30) — same meaning as
	// wfm.Options. MaxRetries bounds backpressure retries per
	// submission (default 60; 429s without progress beyond that fail).
	RetryBackoff    float64
	RetryBackoffMax float64
	MaxRetries      int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) base() string { return strings.TrimRight(c.BaseURL, "/") }

func (c *Client) submitURL() string {
	u := c.base() + "/v1/runs"
	q := url.Values{}
	if c.Tenant != "" {
		q.Set("tenant", c.Tenant)
	}
	if c.Priority != "" {
		q.Set("priority", c.Priority)
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// apiError is a non-2xx response decoded far enough to report.
type apiError struct {
	Status int
	Body   string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("wfmd: server returned %d: %s", e.Status, strings.TrimSpace(e.Body))
}

func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return &apiError{Status: resp.StatusCode, Body: eb.Error}
		}
		return &apiError{Status: resp.StatusCode, Body: string(body)}
	}
	return json.Unmarshal(body, v)
}

// SubmitOnce posts a workflow without retrying; backpressure surfaces
// as (*apiError)(429) with retryAfter parsed from the response.
func (c *Client) submitOnce(ctx context.Context, workflow []byte) (*RunStatus, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.submitURL(), bytes.NewReader(workflow))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, 0, err
	}
	retryAfter := wfm.ParseRetryAfter(resp.Header.Get("Retry-After"))
	var st RunStatus
	if err := decodeInto(resp, &st); err != nil {
		return nil, retryAfter, err
	}
	return &st, 0, nil
}

// Submit posts a workflow, honouring backpressure: 429/503 responses
// are retried on the resilience layer's backoff schedule (Retry-After
// wins when the server sends one) until accepted or MaxRetries spent.
func (c *Client) Submit(ctx context.Context, workflow []byte) (*RunStatus, error) {
	base := c.RetryBackoff
	if base <= 0 {
		base = 0.5
	}
	ceil := c.RetryBackoffMax
	if ceil <= 0 {
		ceil = 30
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 60
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		st, retryAfter, err := c.submitOnce(ctx, workflow)
		if err == nil {
			return st, nil
		}
		lastErr = err
		var ae *apiError
		if !asAPIError(err, &ae) || (ae.Status != http.StatusTooManyRequests && ae.Status != http.StatusServiceUnavailable) {
			return nil, err
		}
		delay := wfm.BackoffDelay(attempt,
			time.Duration(base*float64(time.Second)),
			time.Duration(ceil*float64(time.Second)),
			retryAfter)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
	return nil, fmt.Errorf("wfmd: submission still rejected after %d retries: %w", retries, lastErr)
}

func asAPIError(err error, target **apiError) bool {
	ae, ok := err.(*apiError)
	if ok {
		*target = ae
	}
	return ok
}

// Status fetches one run's live status.
func (c *Client) Status(ctx context.Context, id string) (*RunStatus, error) {
	var st RunStatus
	if err := c.get(ctx, "/v1/runs/"+url.PathEscape(id), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every run's status, optionally filtered by the client's
// tenant when mine is true.
func (c *Client) List(ctx context.Context, mine bool) ([]*RunStatus, error) {
	path := "/v1/runs"
	if mine && c.Tenant != "" {
		path += "?tenant=" + url.QueryEscape(c.Tenant)
	}
	var out []*RunStatus
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests cancellation of a run.
func (c *Client) Cancel(ctx context.Context, id string) (*RunStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base()+"/v1/runs/"+url.PathEscape(id)+"/cancel", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	var st RunStatus
	if err := decodeInto(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a terminal run's durable result.
func (c *Client) Result(ctx context.Context, id string) (*RunResult, error) {
	var rr RunResult
	if err := c.get(ctx, "/v1/runs/"+url.PathEscape(id)+"/result", &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// Wait polls a run's status every poll (default 200ms) until it is
// terminal, then returns the final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*RunStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if IsTerminal(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base()+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	return decodeInto(resp, v)
}
