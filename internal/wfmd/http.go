// HTTP surface of the workflow service: the /v1/runs lifecycle API on
// top of the shared telemetry mux (/metrics with OpenMetrics
// negotiation, /healthz, pprof — all free from internal/obs), with
// structured request logging wrapped around every handler.
package wfmd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"wfserverless/internal/obs"
)

// maxWorkflowBytes bounds a submission body; a 100k-task workflow
// marshals well under this.
const maxWorkflowBytes = 256 << 20

// Handler returns the service's full HTTP handler: lifecycle routes,
// telemetry mux, request logging.
func (s *Server) Handler() http.Handler {
	mux := obs.TelemetryMux(s.WriteMetrics)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	return s.withRequestLog(mux)
}

// statusRecorder captures the status code a handler writes so the
// request log can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withRequestLog is the logging middleware: method, path, tenant,
// status, latency for every request, including the telemetry routes.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.log.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"tenant", tenantOf(r),
			"status", rec.status,
			"latency_ms", float64(time.Since(start).Microseconds())/1000,
		)
	})
}

// tenantOf reads the submission's tenant from the query string or the
// X-Tenant header (query wins).
func tenantOf(r *http.Request) string {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return r.Header.Get("X-Tenant")
}

func writeJSONResponse(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxWorkflowBytes+1))
	if err != nil {
		writeJSONResponse(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if len(body) > maxWorkflowBytes {
		writeJSONResponse(w, http.StatusRequestEntityTooLarge, errorBody{Error: "workflow too large"})
		return
	}
	st, err := s.Submit(tenantOf(r), r.URL.Query().Get("priority"), body)
	switch {
	case err == nil:
		writeJSONResponse(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		// The honest-backpressure contract: 429 + Retry-After, the
		// exact pair wfm's resilience layer (and the Client below)
		// already back off on.
		w.Header().Set("Retry-After", strconv.FormatFloat(s.cfg.RetryAfter, 'g', -1, 64))
		writeJSONResponse(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	default:
		writeJSONResponse(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSONResponse(w, http.StatusOK, s.List(tenantOf(r)))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSONResponse(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSONResponse(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSONResponse(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSONResponse(w, http.StatusAccepted, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSONResponse(w, http.StatusOK, res)
	case errors.Is(err, ErrNotFound):
		writeJSONResponse(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNotTerminal):
		writeJSONResponse(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("%v; poll GET /v1/runs/%s", err, r.PathValue("id"))})
	default:
		writeJSONResponse(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}
