// Package wfmd is the multi-run control plane: a long-lived workflow
// service that accepts workflow JSON submissions over HTTP and
// executes many concurrent runs — each its own wfm.Manager — against
// shared platform backends.
//
// The layering, bottom to top:
//
//	wfm.Manager   one run: scheduling, resilience, journal, memo
//	dispatcher    admission queue, per-tenant quotas, weighted
//	              fair-share task gate (admission.go)
//	Server        run registry, per-run data dirs, resume-on-restart,
//	              per-tenant metrics (this file)
//	HTTP layer    /v1/runs lifecycle + telemetry mux + request
//	              logging (http.go)
//
// Every accepted run owns a directory under <DataDir>/runs/<id>/
// holding the submitted workflow bytes, a meta record, the run's
// write-ahead journal, and — once terminal — a result record. The
// result file doubles as the terminal marker: on restart the server
// reloads terminal runs into the registry as history and re-admits
// everything else through Manager.Resume, which replays the journal
// and re-invokes only what is not recorded complete. A daemon crash
// therefore loses no accepted run and duplicates no completed task.
package wfmd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfserverless/internal/journal"
	"wfserverless/internal/obs"
	"wfserverless/internal/wfformat"
	"wfserverless/internal/wfm"
)

// Config configures a Server.
type Config struct {
	// DataDir is the service state root. Required. Run state lives
	// under DataDir/runs/<id>/.
	DataDir string
	// Manager is the template for every run's wfm.Options. Drive is
	// required; Journal, Monitor, Gate and Logger are owned per-run by
	// the server and must be unset. Client defaults to one shared
	// pooled client so hundreds of runs reuse one transport.
	Manager wfm.Options
	// Tenants pre-registers tenant quota/weight configs. Tenants not
	// listed are admitted with DefaultTenant's class.
	Tenants []TenantConfig
	// DefaultTenant is the config class for unregistered tenants.
	DefaultTenant TenantConfig
	// QueueCapacity bounds admitted-but-not-yet-running runs across
	// all tenants; overflow is rejected with ErrQueueFull (429 on the
	// wire). Zero defaults to 256.
	QueueCapacity int
	// MaxActiveRuns bounds simultaneously executing runs across all
	// tenants. Zero defaults to 64.
	MaxActiveRuns int
	// TaskSlots is the global in-flight task invocation budget shared
	// by all runs through the fair-share gate. Zero defaults to 256.
	TaskSlots int
	// RetryAfter is the hint (seconds, possibly fractional) sent with
	// 429 responses. Zero defaults to 1.
	RetryAfter float64
	// TraceSample, when positive, gives every run a private tracer at
	// this sampling ratio; sampled runs leave a spans.jsonl in their
	// run directory.
	TraceSample float64
	// JournalSync is each run journal's fsync policy;
	// JournalGroupWindow is the group-commit batching window (zero
	// uses the journal package's default).
	JournalSync        journal.SyncPolicy
	JournalGroupWindow time.Duration
	// Logger receives service and per-run structured logs. Nil
	// discards them.
	Logger *slog.Logger
}

// Run lifecycle states as they appear on the wire.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// IsTerminal reports whether a run state is final.
func IsTerminal(state string) bool {
	return state == StateSucceeded || state == StateFailed || state == StateCancelled
}

// RunMeta is the durable submission record (meta.json).
type RunMeta struct {
	ID            string `json:"id"`
	Tenant        string `json:"tenant"`
	Priority      string `json:"priority"`
	Workflow      string `json:"workflow"`
	Tasks         int    `json:"tasks"`
	SubmittedUnix int64  `json:"submitted_unix"`
}

// RunStatus is the live lifecycle view served by GET /v1/runs/{id}:
// registry state plus the run's Monitor snapshot.
type RunStatus struct {
	ID            string `json:"id"`
	Tenant        string `json:"tenant"`
	Priority      string `json:"priority"`
	Workflow      string `json:"workflow"`
	State         string `json:"state"`
	Tasks         int    `json:"tasks"`
	Running       int64  `json:"running"`
	Done          int64  `json:"done"`
	Failed        int64  `json:"failed"`
	Retries       int64  `json:"retries"`
	MemoHits      int64  `json:"memo_hits,omitempty"`
	Resumed       bool   `json:"resumed,omitempty"`
	SubmittedUnix int64  `json:"submitted_unix"`
	EndedUnix     int64  `json:"ended_unix,omitempty"`
	Error         string `json:"error,omitempty"`
}

// RunResult is the durable terminal record (result.json), served by
// GET /v1/runs/{id}/result.
type RunResult struct {
	ID            string   `json:"id"`
	Tenant        string   `json:"tenant"`
	Priority      string   `json:"priority"`
	Workflow      string   `json:"workflow"`
	State         string   `json:"state"`
	Tasks         int      `json:"tasks"`
	Completed     int      `json:"completed"`
	FailedTasks   []string `json:"failed_tasks,omitempty"`
	Recovered     int      `json:"recovered,omitempty"`
	Memoized      int      `json:"memoized,omitempty"`
	Retries       int64    `json:"retries,omitempty"`
	MakespanS     float64  `json:"makespan_s"`
	WallS         float64  `json:"wall_s"`
	Resumed       bool     `json:"resumed,omitempty"`
	Error         string   `json:"error,omitempty"`
	SubmittedUnix int64    `json:"submitted_unix"`
	EndedUnix     int64    `json:"ended_unix"`
}

// run is one registered workflow run.
type run struct {
	id       string
	tenant   string
	priority Priority
	dir      string
	w        *wfformat.Workflow
	tasks    int
	meta     RunMeta
	resumed  bool

	mu        sync.Mutex
	state     string
	cancelReq bool
	cancel    context.CancelFunc
	mon       *wfm.Monitor
	result    *RunResult
	endedUnix int64
	errMsg    string
}

func (r *run) setState(s string) {
	r.mu.Lock()
	r.state = s
	r.mu.Unlock()
}

// Server is the workflow service.
type Server struct {
	cfg  Config
	disp *dispatcher
	log  *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	stopping   atomic.Bool // graceful: journals closed clean, runs resumable
	aborting   atomic.Bool // crash simulation: journals aborted mid-write

	mu        sync.Mutex
	runs      map[string]*run
	order     []string
	seq       int
	closed    bool
	completed map[string]map[string]int64 // tenant → state → count
	wg        sync.WaitGroup
}

// New builds a Server over cfg.DataDir, creating the directory tree if
// needed and re-admitting every non-terminal run found there (the
// resume-on-restart path). The returned server is already accepting
// work; wire Handler into an http.Server to expose it.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("wfmd: Config needs a DataDir")
	}
	if cfg.Manager.Drive == nil {
		return nil, errors.New("wfmd: Config.Manager needs a Drive")
	}
	if cfg.Manager.Journal != nil || cfg.Manager.Monitor != nil || cfg.Manager.Gate != nil || cfg.Manager.Tracer != nil {
		return nil, errors.New("wfmd: Config.Manager Journal/Monitor/Gate/Tracer are owned per-run by the server (use TraceSample)")
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 256
	}
	if cfg.MaxActiveRuns <= 0 {
		cfg.MaxActiveRuns = 64
	}
	if cfg.TaskSlots <= 0 {
		cfg.TaskSlots = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Manager.Client == nil {
		// One pooled transport for every run the service will ever
		// execute; without this each wfm.New builds its own.
		cfg.Manager.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if err := os.MkdirAll(runsDir(cfg.DataDir), 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		disp:       newDispatcher(cfg),
		log:        cfg.Logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		runs:       make(map[string]*run),
		completed:  make(map[string]map[string]int64),
	}
	s.disp.launch = func(r *run) {
		s.wg.Add(1)
		go s.execute(r)
	}
	if err := s.scanRuns(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

func runsDir(dataDir string) string { return filepath.Join(dataDir, "runs") }

// scanRuns reloads registry state from disk at startup: terminal runs
// become history, incomplete runs are force-admitted for Resume.
func (s *Server) scanRuns() error {
	entries, err := os.ReadDir(runsDir(s.cfg.DataDir))
	if err != nil {
		return err
	}
	var resume []*run
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(runsDir(s.cfg.DataDir), e.Name())
		meta, result, err := LoadRun(dir)
		if err != nil {
			s.log.Warn("skipping unreadable run dir", "dir", dir, "err", err)
			continue
		}
		if n, ok := parseRunID(meta.ID); ok && n > s.seq {
			s.seq = n
		}
		prio, _ := ParsePriority(meta.Priority)
		r := &run{
			id: meta.ID, tenant: meta.Tenant, priority: prio,
			dir: dir, tasks: meta.Tasks, meta: *meta,
		}
		if result != nil {
			r.state = result.State
			r.result = result
			r.endedUnix = result.EndedUnix
			r.errMsg = result.Error
			s.register(r)
			continue
		}
		w, err := wfformat.Load(filepath.Join(dir, "workflow.json"))
		if err != nil {
			s.log.Warn("skipping run with unreadable workflow", "dir", dir, "err", err)
			continue
		}
		r.w = w
		r.state = StateQueued
		r.resumed = true
		s.register(r)
		resume = append(resume, r)
	}
	for _, r := range resume {
		s.log.Info("re-admitting incomplete run", "run", r.id, "tenant", r.tenant)
		s.disp.forceEnqueue(r)
	}
	return nil
}

func parseRunID(id string) (int, bool) {
	const prefix = "r-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimLeft(id[len(prefix):], "0"))
	if err != nil {
		if id[len(prefix):] == strings.Repeat("0", len(id)-len(prefix)) {
			return 0, true
		}
		return 0, false
	}
	return n, true
}

func (s *Server) register(r *run) {
	s.mu.Lock()
	s.runs[r.id] = r
	s.order = append(s.order, r.id)
	s.mu.Unlock()
}

// Submit validates and admits one workflow, persisting its run dir
// before queueing. body is the workflow JSON exactly as posted; it is
// stored verbatim so a restart reloads a byte-identical (and therefore
// fingerprint-identical, journal-resumable) workflow.
func (s *Server) Submit(tenant, priority string, body []byte) (*RunStatus, error) {
	if tenant == "" {
		tenant = "default"
	}
	prio, err := ParsePriority(priority)
	if err != nil {
		return nil, err
	}
	w, err := wfformat.Parse(body)
	if err != nil {
		return nil, fmt.Errorf("wfmd: bad workflow: %w", err)
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("wfmd: bad workflow: %w", err)
	}
	tasks := 0
	for _, t := range w.Tasks {
		if t.Command.APIURL == "" {
			return nil, fmt.Errorf("wfmd: bad workflow: task %s has no api_url", t.Name)
		}
		tasks++
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("wfmd: server is shutting down")
	}
	s.seq++
	id := fmt.Sprintf("r-%06d", s.seq)
	s.mu.Unlock()

	if err := s.disp.reserve(tenant); err != nil {
		return nil, err
	}
	dir := filepath.Join(runsDir(s.cfg.DataDir), id)
	meta := RunMeta{
		ID: id, Tenant: tenant, Priority: prio.String(),
		Workflow: w.Name, Tasks: tasks, SubmittedUnix: time.Now().Unix(),
	}
	if err := persistSubmission(dir, body, meta); err != nil {
		s.disp.unreserve(tenant)
		os.RemoveAll(dir)
		return nil, err
	}
	r := &run{
		id: id, tenant: tenant, priority: prio, dir: dir,
		w: w, tasks: tasks, meta: meta, state: StateQueued,
	}
	s.register(r)
	s.log.Info("run accepted", "run", id, "tenant", tenant,
		"priority", prio.String(), "workflow", w.Name, "tasks", tasks)
	s.disp.enqueue(r)
	return s.status(r), nil
}

func persistSubmission(dir string, body []byte, meta RunMeta) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "workflow.json"), body, 0o644); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "meta.json"), meta)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// execute runs one admitted run to completion on its own Manager.
func (s *Server) execute(r *run) {
	defer s.wg.Done()
	defer s.disp.runDone(r.tenant)

	r.mu.Lock()
	if r.cancelReq {
		r.mu.Unlock()
		s.finish(r, StateCancelled, nil, context.Canceled, time.Time{})
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	mon := wfm.NewMonitor()
	r.state = StateRunning
	r.cancel = cancel
	r.mon = mon
	r.mu.Unlock()
	defer cancel()

	j, err := journal.Open(filepath.Join(r.dir, "journal"), journal.Options{
		Sync:        s.cfg.JournalSync,
		GroupWindow: s.cfg.JournalGroupWindow,
	})
	if err != nil {
		s.finish(r, StateFailed, nil, err, time.Time{})
		return
	}
	opts := s.cfg.Manager
	opts.Journal = j
	opts.Monitor = mon
	opts.Gate = s.disp.gate(r.tenant, r.priority)
	opts.Logger = s.log.With("run", r.id, "tenant", r.tenant)
	if s.cfg.TraceSample > 0 {
		// Each run gets a private tracer so its span file holds only
		// its own trace.
		opts.Tracer = obs.NewTracer(obs.Options{SampleRatio: s.cfg.TraceSample})
	}
	mgr, err := wfm.New(opts)
	if err != nil {
		j.Close()
		s.finish(r, StateFailed, nil, err, time.Time{})
		return
	}
	started := time.Now()
	// Resume covers both lives of a run: on an empty journal it
	// degenerates to a fresh Run, on a non-empty one it replays.
	res, runErr := mgr.Resume(ctx, r.w)

	if s.aborting.Load() {
		// Simulated daemon crash: drop the journal's unsynced tail and
		// leave no terminal marker, exactly like SIGKILL would.
		j.Abort()
		return
	}
	j.Close()
	if runErr != nil && ctx.Err() != nil && !r.cancelRequested() && s.stopping.Load() {
		// Graceful shutdown interrupted the run: journal is closed
		// clean and no result is written, so the next life resumes it.
		s.log.Info("run interrupted for shutdown", "run", r.id)
		return
	}
	state := StateSucceeded
	if runErr != nil {
		state = StateFailed
		if r.cancelRequested() || errors.Is(runErr, context.Canceled) {
			state = StateCancelled
		}
	}
	if tr := wfm.TraceOf(res); tr != nil && len(tr.Spans) > 0 {
		if f, err := os.Create(filepath.Join(r.dir, "spans.jsonl")); err == nil {
			tr.WriteSpanLog(f)
			f.Close()
		}
	}
	s.finish(r, state, res, runErr, started)
}

func (r *run) cancelRequested() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cancelReq
}

// finish moves a run to a terminal state and persists result.json —
// the durable marker that stops a restart from re-admitting it.
func (s *Server) finish(r *run, state string, res *wfm.Result, runErr error, started time.Time) {
	now := time.Now()
	rr := &RunResult{
		ID: r.id, Tenant: r.tenant, Priority: r.priority.String(),
		Workflow: r.meta.Workflow, State: state, Tasks: r.tasks,
		Resumed:       r.resumed,
		SubmittedUnix: r.meta.SubmittedUnix,
		EndedUnix:     now.Unix(),
	}
	if !started.IsZero() {
		rr.WallS = now.Sub(started).Seconds()
	}
	if runErr != nil {
		rr.Error = runErr.Error()
	}
	if res != nil {
		rr.MakespanS = res.Makespan
		rr.WallS = res.Wall.Seconds()
		rr.FailedTasks = res.Failed
		for _, tr := range res.Tasks {
			if tr.Name == wfm.HeaderName || tr.Name == wfm.TailName {
				continue // synthetic framing entries, not workflow tasks
			}
			if tr.Err == nil {
				rr.Completed++
			}
			if tr.Recovered {
				rr.Recovered++
			}
			if tr.Memoized {
				rr.Memoized++
			}
		}
	}
	if r.mon != nil {
		rr.Retries = r.mon.Snapshot().Retries
	}
	if err := writeJSON(filepath.Join(r.dir, "result.json"), rr); err != nil {
		s.log.Error("persisting run result failed", "run", r.id, "err", err)
	}
	r.mu.Lock()
	r.state = state
	r.result = rr
	r.endedUnix = rr.EndedUnix
	if runErr != nil {
		r.errMsg = runErr.Error()
	}
	r.mu.Unlock()
	s.mu.Lock()
	byState := s.completed[r.tenant]
	if byState == nil {
		byState = make(map[string]int64)
		s.completed[r.tenant] = byState
	}
	byState[state]++
	s.mu.Unlock()
	s.log.Info("run finished", "run", r.id, "tenant", r.tenant,
		"state", state, "completed", rr.Completed, "recovered", rr.Recovered,
		"wall_s", fmt.Sprintf("%.3f", rr.WallS))
}

// Cancel requests cancellation of a run. Queued runs finish as
// cancelled when they reach the front; running runs have their context
// cancelled. Terminal runs are left alone.
func (s *Server) Cancel(id string) (*RunStatus, error) {
	r := s.lookup(id)
	if r == nil {
		return nil, ErrNotFound
	}
	r.mu.Lock()
	r.cancelReq = true
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return s.status(r), nil
}

// ErrNotFound marks an unknown run ID.
var ErrNotFound = errors.New("wfmd: no such run")

func (s *Server) lookup(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// Status returns one run's live status.
func (s *Server) Status(id string) (*RunStatus, error) {
	r := s.lookup(id)
	if r == nil {
		return nil, ErrNotFound
	}
	return s.status(r), nil
}

func (s *Server) status(r *run) *RunStatus {
	r.mu.Lock()
	st := &RunStatus{
		ID: r.id, Tenant: r.tenant, Priority: r.priority.String(),
		Workflow: r.meta.Workflow, State: r.state, Tasks: r.tasks,
		Resumed:       r.resumed,
		SubmittedUnix: r.meta.SubmittedUnix,
		EndedUnix:     r.endedUnix,
		Error:         r.errMsg,
	}
	mon := r.mon
	result := r.result
	r.mu.Unlock()
	if mon != nil {
		snap := mon.Snapshot()
		st.Running = snap.Running
		st.Done = snap.Done
		st.Failed = snap.Failed
		st.Retries = snap.Retries
		st.MemoHits = snap.MemoHits
	}
	if result != nil {
		st.Done = int64(result.Completed)
		st.Failed = int64(len(result.FailedTasks))
	}
	return st
}

// List returns every registered run's status in submission order,
// optionally filtered by tenant.
func (s *Server) List(tenant string) []*RunStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]*RunStatus, 0, len(ids))
	for _, id := range ids {
		r := s.lookup(id)
		if r == nil || (tenant != "" && r.tenant != tenant) {
			continue
		}
		out = append(out, s.status(r))
	}
	return out
}

// Result returns a terminal run's durable result, or ErrNotTerminal.
func (s *Server) Result(id string) (*RunResult, error) {
	r := s.lookup(id)
	if r == nil {
		return nil, ErrNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.result == nil {
		return nil, ErrNotTerminal
	}
	return r.result, nil
}

// ErrNotTerminal marks a result request for a run still in flight.
var ErrNotTerminal = errors.New("wfmd: run not terminal yet")

// TenantStats exposes the admission plane's per-tenant counters.
func (s *Server) TenantStats() []TenantStats { return s.disp.stats() }

// QueueDepth is the current admitted-but-not-running run count.
func (s *Server) QueueDepth() int { return s.disp.queueDepth() }

// Stop shuts the server down gracefully: no new submissions, every
// running Manager's context is cancelled, journals close clean, and no
// terminal marker is written for interrupted runs — so a later New on
// the same DataDir resumes them. Blocks until all executors return.
func (s *Server) Stop() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopping.Store(true)
	s.baseCancel()
	s.wg.Wait()
}

// Abort simulates a daemon crash for recovery harnesses: like Stop but
// run journals drop their unsynced tails (journal.Abort) instead of
// closing cleanly, and interrupted runs look exactly as a SIGKILL
// would leave them.
func (s *Server) Abort() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.aborting.Store(true)
	s.stopping.Store(true)
	s.baseCancel()
	s.wg.Wait()
}

// WriteMetrics writes the service's per-tenant metric families in
// Prometheus text exposition format; obs.TelemetryMux negotiates the
// OpenMetrics variant on top.
func (s *Server) WriteMetrics(w io.Writer) error {
	stats := s.TenantStats()
	s.mu.Lock()
	completed := make(map[string]map[string]int64, len(s.completed))
	for tenant, byState := range s.completed {
		m := make(map[string]int64, len(byState))
		for st, n := range byState {
			m[st] = n
		}
		completed[tenant] = m
	}
	s.mu.Unlock()

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP wfmd_queue_depth Admitted runs waiting to start.\n# TYPE wfmd_queue_depth gauge\nwfmd_queue_depth %d\n", s.QueueDepth()); err != nil {
		return err
	}
	writes := []struct {
		name, help, typ string
		value           func(TenantStats) int64
	}{
		{"wfmd_runs_accepted_total", "Runs admitted per tenant.", "counter", func(t TenantStats) int64 { return t.RunsAccepted }},
		{"wfmd_runs_rejected_total", "Runs rejected with backpressure per tenant.", "counter", func(t TenantStats) int64 { return t.RunsRejected }},
		{"wfmd_runs_queued", "Admitted runs waiting to start per tenant.", "gauge", func(t TenantStats) int64 { return int64(t.RunsQueued) }},
		{"wfmd_runs_running", "Currently executing runs per tenant.", "gauge", func(t TenantStats) int64 { return int64(t.RunsRunning) }},
		{"wfmd_run_concurrency_highwater", "Maximum simultaneously executing runs observed per tenant.", "gauge", func(t TenantStats) int64 { return int64(t.RunHighwater) }},
		{"wfmd_tasks_inflight", "Task invocations currently holding a slot per tenant.", "gauge", func(t TenantStats) int64 { return int64(t.TasksInflight) }},
		{"wfmd_tasks_dispatched_total", "Task-slot grants per tenant.", "counter", func(t TenantStats) int64 { return t.TasksDispatched }},
		{"wfmd_tasks_contested_total", "Task-slot grants made under cross-tenant contention per tenant.", "counter", func(t TenantStats) int64 { return t.ContestedGrants }},
	}
	for _, m := range writes {
		if err := p("# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for _, t := range stats {
			if err := p("%s{tenant=%q} %d\n", m.name, t.Tenant, m.value(t)); err != nil {
				return err
			}
		}
	}
	if err := p("# HELP wfmd_runs_completed_total Terminal runs per tenant and state.\n# TYPE wfmd_runs_completed_total counter\n"); err != nil {
		return err
	}
	tenants := make([]string, 0, len(completed))
	for tenant := range completed {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	for _, tenant := range tenants {
		states := make([]string, 0, len(completed[tenant]))
		for st := range completed[tenant] {
			states = append(states, st)
		}
		sort.Strings(states)
		for _, st := range states {
			if err := p("wfmd_runs_completed_total{tenant=%q,state=%q} %d\n", tenant, st, completed[tenant][st]); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadRun reads a run directory's durable records: meta.json always,
// result.json when the run reached a terminal state (nil otherwise).
// Shared by the restart scan and by analyze's data-dir summary.
func LoadRun(dir string) (*RunMeta, *RunResult, error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, nil, err
	}
	var meta RunMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, nil, fmt.Errorf("wfmd: %s: bad meta.json: %w", dir, err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return &meta, nil, nil
		}
		return nil, nil, err
	}
	var result RunResult
	if err := json.Unmarshal(data, &result); err != nil {
		return nil, nil, fmt.Errorf("wfmd: %s: bad result.json: %w", dir, err)
	}
	return &meta, &result, nil
}

// RunsRoot resolves path to the directory whose children are run
// dirs: path itself if its entries carry meta.json, path/runs if that
// exists, "" when neither looks like wfmd state.
func RunsRoot(path string) string {
	if fi, err := os.Stat(filepath.Join(path, "runs")); err == nil && fi.IsDir() {
		return filepath.Join(path, "runs")
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return ""
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(path, e.Name(), "meta.json")); err == nil {
			return path
		}
	}
	return ""
}
