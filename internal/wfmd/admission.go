// Admission and fair-share dispatch for the workflow service.
//
// Two resources are arbitrated across tenants:
//
//   - Run slots. Each tenant may have at most MaxConcurrentRuns runs
//     executing; admitted-but-not-started runs wait in per-tenant
//     priority queues. A bounded global admission queue caps how much
//     waiting work the service will hold at all — overflow is the
//     honest-backpressure signal (429 + Retry-After at the HTTP layer).
//
//   - Task slots. Every running Manager carries a TaskGate pointing
//     back here, so all concurrent runs draw invocations from one
//     global budget of TaskSlots. Grants use weighted fair queuing
//     over per-tenant virtual time: each grant charges the tenant
//     1/weight, and the next grant goes to the eligible tenant with
//     the smallest virtual time — so under saturation tenants' task
//     throughputs converge to the ratio of their weights, regardless
//     of how many runs or how wide a DAG each submits.
//
// Priority classes order work *within* a tenant (a tenant's high
// queue drains before its normal, normal before low — for both run
// starts and task grants); they deliberately do not let one tenant
// starve another, which is the fair-share layer's job.
package wfmd

import (
	"context"
	"errors"
	"sort"
	"sync"
)

// ErrQueueFull is returned by Submit when the service's admission
// queue is at capacity. The HTTP layer maps it to 429 + Retry-After —
// the signal wfm's resilience layer already consumes.
var ErrQueueFull = errors.New("wfmd: admission queue full")

// Priority classes for submitted runs.
type Priority int

const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
	numPriorities = 3
)

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	}
	return "normal"
}

// ParsePriority maps the wire form ("high", "normal", "low"; empty
// means normal) to a Priority.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	}
	return PriorityNormal, errors.New("wfmd: unknown priority " + s)
}

// TenantConfig is one tenant's share and quota configuration.
type TenantConfig struct {
	// Name identifies the tenant; submissions carry it as the tenant
	// query parameter or X-Tenant header.
	Name string
	// Weight is the tenant's fair-share weight; task grants under
	// contention converge to the ratio of weights. Zero or negative
	// defaults to 1.
	Weight float64
	// MaxConcurrentRuns caps the tenant's simultaneously executing
	// runs; zero defaults to 4. Excess admitted runs queue.
	MaxConcurrentRuns int
	// MaxInFlightTasks caps the tenant's concurrently dispatched task
	// invocations across all of its runs. Zero means no per-tenant cap
	// (the global TaskSlots budget still binds).
	MaxInFlightTasks int
}

func (tc TenantConfig) withDefaults(name string) TenantConfig {
	tc.Name = name
	if tc.Weight <= 0 {
		tc.Weight = 1
	}
	if tc.MaxConcurrentRuns <= 0 {
		tc.MaxConcurrentRuns = 4
	}
	return tc
}

// TenantStats is one tenant's admission-plane counters, for /metrics
// and for the experiment gates.
type TenantStats struct {
	Tenant       string
	Weight       float64
	RunsAccepted int64
	RunsRejected int64
	RunsQueued   int
	RunsRunning  int
	// RunHighwater is the maximum number of simultaneously running
	// runs ever observed — the quota-never-exceeded gate checks it
	// against MaxConcurrentRuns.
	RunHighwater  int
	RunQuota      int
	TasksInflight int
	TaskHighwater int
	// TasksDispatched counts task-slot grants. ContestedGrants counts
	// the subset made while at least one other tenant also had waiting
	// tasks — the denominator of the fair-share ratio gate, because
	// weights only bind under contention.
	TasksDispatched int64
	ContestedGrants int64
}

// taskWaiter is one blocked TaskGate.Acquire.
type taskWaiter struct {
	ch        chan struct{}
	granted   bool
	cancelled bool
}

// tenantState is the dispatcher's per-tenant book-keeping. All fields
// are guarded by dispatcher.mu.
type tenantState struct {
	cfg TenantConfig

	accepted  int64
	rejected  int64
	queued    [numPriorities][]*run // run queues, FIFO within class
	queuedLen int
	running   int
	runHigh   int

	inflight   int
	taskHigh   int
	dispatched int64
	contested  int64
	vt         float64 // weighted fair-share virtual time
	waiters    [numPriorities][]*taskWaiter
	waiting    int // un-cancelled waiters across classes
}

func (t *tenantState) weight() float64 { return t.cfg.Weight }

// dispatcher owns admission state. It never blocks while holding mu;
// waiting happens on per-waiter channels outside the lock.
type dispatcher struct {
	mu sync.Mutex

	tenants  map[string]*tenantState
	names    []string // sorted tenant names, for stable iteration
	defaults TenantConfig

	queueCap      int // bound on total queued (admitted, not running) runs
	queuedRuns    int
	maxActiveRuns int
	activeRuns    int

	taskSlots int
	freeSlots int

	// launch starts an admitted run's executor; set by the Server. It
	// is invoked outside the lock.
	launch func(*run)
}

func newDispatcher(cfg Config) *dispatcher {
	d := &dispatcher{
		tenants:       make(map[string]*tenantState),
		defaults:      cfg.DefaultTenant,
		queueCap:      cfg.QueueCapacity,
		maxActiveRuns: cfg.MaxActiveRuns,
		taskSlots:     cfg.TaskSlots,
		freeSlots:     cfg.TaskSlots,
	}
	for _, tc := range cfg.Tenants {
		d.tenantLocked(tc.Name).cfg = tc.withDefaults(tc.Name)
	}
	return d
}

// tenantLocked returns (creating on first sight) the tenant's state.
// Unknown tenants get the default config — the service is open to new
// tenants, they just share the default quota class.
func (d *dispatcher) tenantLocked(name string) *tenantState {
	t := d.tenants[name]
	if t == nil {
		t = &tenantState{cfg: d.defaults.withDefaults(name)}
		d.tenants[name] = t
		d.names = append(d.names, name)
		sort.Strings(d.names)
	}
	return t
}

// reserve claims an admission-queue slot for a run about to be
// persisted, so disk work only happens for runs the service will
// actually hold. unreserve backs it out if persistence fails.
func (d *dispatcher) reserve(tenant string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tenantLocked(tenant)
	if d.queuedRuns >= d.queueCap {
		t.rejected++
		return ErrQueueFull
	}
	d.queuedRuns++
	t.queuedLen++
	t.accepted++
	return nil
}

func (d *dispatcher) unreserve(tenant string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tenantLocked(tenant)
	d.queuedRuns--
	t.queuedLen--
	t.accepted--
}

// enqueue places a reserved run into its tenant's priority queue and
// starts whatever the run quotas now allow.
func (d *dispatcher) enqueue(r *run) {
	d.mu.Lock()
	t := d.tenantLocked(r.tenant)
	t.queued[r.priority] = append(t.queued[r.priority], r)
	started := d.startRunsLocked()
	d.mu.Unlock()
	for _, s := range started {
		d.launch(s)
	}
}

// forceEnqueue admits a run regardless of queue capacity — used for
// resume-on-restart, which must never bounce a run the service already
// accepted in a previous life.
func (d *dispatcher) forceEnqueue(r *run) {
	d.mu.Lock()
	t := d.tenantLocked(r.tenant)
	d.queuedRuns++
	t.queuedLen++
	t.accepted++
	t.queued[r.priority] = append(t.queued[r.priority], r)
	started := d.startRunsLocked()
	d.mu.Unlock()
	for _, s := range started {
		d.launch(s)
	}
}

// runDone releases a finished run's slot and starts queued successors.
func (d *dispatcher) runDone(tenant string) {
	d.mu.Lock()
	t := d.tenantLocked(tenant)
	t.running--
	d.activeRuns--
	started := d.startRunsLocked()
	d.mu.Unlock()
	for _, s := range started {
		d.launch(s)
	}
}

// startRunsLocked pops queued runs while global and per-tenant run
// quotas allow, picking the eligible tenant with the least
// running/weight each time (run-level fair share mirrors the
// task-level rule on a coarser resource). Returns the runs to launch;
// the caller launches them outside the lock.
func (d *dispatcher) startRunsLocked() []*run {
	var started []*run
	for d.activeRuns < d.maxActiveRuns {
		var best *tenantState
		var bestShare float64
		for _, name := range d.names {
			t := d.tenants[name]
			if t.queuedLen == 0 || t.running >= t.cfg.MaxConcurrentRuns {
				continue
			}
			share := float64(t.running+1) / t.weight()
			if best == nil || share < bestShare {
				best, bestShare = t, share
			}
		}
		if best == nil {
			break
		}
		r := best.popRunLocked()
		if r == nil {
			break
		}
		d.queuedRuns--
		best.queuedLen--
		best.running++
		if best.running > best.runHigh {
			best.runHigh = best.running
		}
		d.activeRuns++
		started = append(started, r)
	}
	return started
}

func (t *tenantState) popRunLocked() *run {
	for p := numPriorities - 1; p >= 0; p-- {
		if q := t.queued[p]; len(q) > 0 {
			r := q[0]
			t.queued[p] = q[1:]
			return r
		}
	}
	return nil
}

// gate returns the TaskGate a run's Manager dispatches through.
func (d *dispatcher) gate(tenant string, prio Priority) *tenantGate {
	return &tenantGate{d: d, tenant: tenant, prio: prio}
}

// tenantGate adapts the dispatcher to wfm.TaskGate for one run.
type tenantGate struct {
	d      *dispatcher
	tenant string
	prio   Priority
}

func (g *tenantGate) Acquire(ctx context.Context) error {
	d := g.d
	d.mu.Lock()
	t := d.tenantLocked(g.tenant)
	w := &taskWaiter{ch: make(chan struct{}, 1)}
	t.waiters[g.prio] = append(t.waiters[g.prio], w)
	if t.waiting == 0 && t.inflight == 0 {
		// Tenant (re)activates: advance its virtual time to the
		// slowest active tenant's so an idle period is not banked as
		// future burst credit (standard WFQ activation rule).
		if min, ok := d.minActiveVTLocked(t); ok && min > t.vt {
			t.vt = min
		}
	}
	t.waiting++
	d.grantLocked()
	d.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if w.granted {
		// The grant raced the cancellation; take it. The task will
		// observe the dead ctx immediately and Release.
		return nil
	}
	w.cancelled = true
	t.waiting--
	return ctx.Err()
}

func (g *tenantGate) Release() {
	d := g.d
	d.mu.Lock()
	t := d.tenantLocked(g.tenant)
	t.inflight--
	d.freeSlots++
	d.grantLocked()
	d.mu.Unlock()
}

// minActiveVTLocked returns the smallest virtual time among tenants
// with demand (in-flight tasks or waiters), excluding skip.
func (d *dispatcher) minActiveVTLocked(skip *tenantState) (float64, bool) {
	min, ok := 0.0, false
	for _, name := range d.names {
		t := d.tenants[name]
		if t == skip || (t.waiting == 0 && t.inflight == 0) {
			continue
		}
		if !ok || t.vt < min {
			min, ok = t.vt, true
		}
	}
	return min, ok
}

// grantLocked hands free task slots to waiters: among tenants with
// demand and headroom under their in-flight cap, the one with the
// smallest virtual time wins; each grant charges 1/weight.
func (d *dispatcher) grantLocked() {
	for d.freeSlots > 0 {
		demanding := 0
		var best *tenantState
		for _, name := range d.names {
			t := d.tenants[name]
			if t.waiting == 0 {
				continue
			}
			demanding++
			if t.cfg.MaxInFlightTasks > 0 && t.inflight >= t.cfg.MaxInFlightTasks {
				continue
			}
			if best == nil || t.vt < best.vt {
				best = t
			}
		}
		if best == nil {
			return
		}
		w := best.popWaiterLocked()
		if w == nil {
			return
		}
		best.waiting--
		best.inflight++
		if best.inflight > best.taskHigh {
			best.taskHigh = best.inflight
		}
		best.dispatched++
		if demanding >= 2 {
			best.contested++
		}
		best.vt += 1 / best.weight()
		d.freeSlots--
		w.granted = true
		w.ch <- struct{}{}
	}
}

func (t *tenantState) popWaiterLocked() *taskWaiter {
	for p := numPriorities - 1; p >= 0; p-- {
		q := t.waiters[p]
		for len(q) > 0 {
			w := q[0]
			q = q[1:]
			if w.cancelled {
				continue
			}
			t.waiters[p] = q
			return w
		}
		t.waiters[p] = q
	}
	return nil
}

// Stats snapshots every tenant's counters, sorted by tenant name.
func (d *dispatcher) stats() []TenantStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TenantStats, 0, len(d.names))
	for _, name := range d.names {
		t := d.tenants[name]
		out = append(out, TenantStats{
			Tenant:          name,
			Weight:          t.weight(),
			RunsAccepted:    t.accepted,
			RunsRejected:    t.rejected,
			RunsQueued:      t.queuedLen,
			RunsRunning:     t.running,
			RunHighwater:    t.runHigh,
			RunQuota:        t.cfg.MaxConcurrentRuns,
			TasksInflight:   t.inflight,
			TaskHighwater:   t.taskHigh,
			TasksDispatched: t.dispatched,
			ContestedGrants: t.contested,
		})
	}
	return out
}

// queueDepth is the current number of admitted-but-not-running runs.
func (d *dispatcher) queueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queuedRuns
}
