package cluster

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func testNode() *Node {
	return NewNode(NodeSpec{
		Name: "n0", Cores: 8, MemBytes: 1 << 30, Packages: 2,
		IdleWatts: 100, MaxWatts: 300,
	})
}

func TestReserveRelease(t *testing.T) {
	n := testNode()
	r, err := n.Reserve(4, 512<<20)
	if err != nil {
		t.Fatal(err)
	}
	u := n.Snapshot()
	if u.ReservedCores != 4 || u.ReservedMem != 512<<20 {
		t.Fatalf("after reserve: %+v", u)
	}
	r.Release()
	u = n.Snapshot()
	if u.ReservedCores != 0 || u.ReservedMem != 0 {
		t.Fatalf("after release: %+v", u)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	n := testNode()
	r, _ := n.Reserve(2, 0)
	r.Release()
	r.Release()
	if u := n.Snapshot(); u.ReservedCores != 0 {
		t.Fatalf("double release corrupted accounting: %+v", u)
	}
}

func TestReserveOverCapacity(t *testing.T) {
	n := testNode()
	if _, err := n.Reserve(9, 0); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	if _, err := n.Reserve(1, 2<<30); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("mem over capacity: err = %v", err)
	}
	// exact fit is allowed
	if _, err := n.Reserve(8, 1<<30); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
}

func TestReserveNegative(t *testing.T) {
	n := testNode()
	if _, err := n.Reserve(-1, 0); err == nil {
		t.Fatal("negative cores accepted")
	}
	if _, err := n.Reserve(0, -1); err == nil {
		t.Fatal("negative mem accepted")
	}
}

func TestBusyAndMemAccounting(t *testing.T) {
	n := testNode()
	rel1 := n.AddBusy(2)
	rel2 := n.AddMem(100)
	u := n.Snapshot()
	if u.BusyCores != 2 || u.UsedMem != 100 {
		t.Fatalf("usage = %+v", u)
	}
	rel1()
	rel1() // idempotent
	rel2()
	u = n.Snapshot()
	if u.BusyCores != 0 || u.UsedMem != 0 {
		t.Fatalf("after release: %+v", u)
	}
}

func TestPowerModel(t *testing.T) {
	n := testNode()
	if p := n.Snapshot().PowerWatts; p != 100 {
		t.Fatalf("idle power = %v, want 100", p)
	}
	rel := n.AddBusy(4) // 50% util
	if p := n.Snapshot().PowerWatts; math.Abs(p-200) > 1e-9 {
		t.Fatalf("50%% power = %v, want 200", p)
	}
	rel()
	rel = n.AddBusy(100) // oversubscribed: clamp at capacity
	defer rel()
	u := n.Snapshot()
	if u.BusyCores != 8 {
		t.Fatalf("BusyCores = %v, want clamped 8", u.BusyCores)
	}
	if math.Abs(u.PowerWatts-300) > 1e-9 {
		t.Fatalf("clamped power = %v, want 300", u.PowerWatts)
	}
}

func TestPackagePowers(t *testing.T) {
	n := testNode()
	pp := n.PackagePowers()
	if len(pp) != 2 {
		t.Fatalf("packages = %d, want 2", len(pp))
	}
	if math.Abs(pp[0]+pp[1]-100) > 1e-9 {
		t.Fatalf("package sum = %v, want 100", pp[0]+pp[1])
	}
}

func TestClusterPlaceFirstFit(t *testing.T) {
	a := NewNode(NodeSpec{Name: "a", Cores: 2, MemBytes: 100, IdleWatts: 1, MaxWatts: 2})
	b := NewNode(NodeSpec{Name: "b", Cores: 8, MemBytes: 100, IdleWatts: 1, MaxWatts: 2})
	c := New(a, b)
	r1, err := c.Place(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Node().Spec().Name != "a" {
		t.Fatalf("placed on %s, want a", r1.Node().Spec().Name)
	}
	// a is now full; next goes to b
	r2, err := c.Place(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Node().Spec().Name != "b" {
		t.Fatalf("placed on %s, want b", r2.Node().Spec().Name)
	}
}

func TestClusterPlaceExhausted(t *testing.T) {
	c := New(NewNode(NodeSpec{Name: "a", Cores: 1, MemBytes: 1}))
	if _, err := c.Place(2, 0); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	empty := New()
	if _, err := empty.Place(1, 0); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("empty cluster err = %v", err)
	}
}

func TestClusterSnapshotSums(t *testing.T) {
	c := PaperTestbed()
	if got := c.TotalCores(); got != 96 {
		t.Fatalf("TotalCores = %v, want 96", got)
	}
	const gb = int64(1) << 30
	if got := c.TotalMem(); got != 448*gb {
		t.Fatalf("TotalMem = %d GB, want 448", got/gb)
	}
	c.Nodes()[0].AddBusy(10)
	c.Nodes()[1].AddBusy(5)
	u := c.Snapshot()
	if u.BusyCores != 15 {
		t.Fatalf("BusyCores = %v", u.BusyCores)
	}
	if u.PowerWatts <= 240 { // must exceed combined idle
		t.Fatalf("PowerWatts = %v, want > 240", u.PowerWatts)
	}
	if u.CapCores != 96 {
		t.Fatalf("CapCores = %v", u.CapCores)
	}
}

func TestConcurrentReservations(t *testing.T) {
	n := NewNode(NodeSpec{Name: "n", Cores: 1000, MemBytes: 1 << 40})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if r, err := n.Reserve(1, 1<<10); err == nil {
					r.Release()
				}
				rel := n.AddBusy(0.5)
				rel()
			}
		}()
	}
	wg.Wait()
	u := n.Snapshot()
	if u.ReservedCores != 0 || u.BusyCores != 0 {
		t.Fatalf("leaked accounting: %+v", u)
	}
}

func TestQuickReserveNeverExceedsCapacity(t *testing.T) {
	f := func(reqs []uint8) bool {
		n := NewNode(NodeSpec{Name: "n", Cores: 16, MemBytes: 1 << 20})
		var live []*Reservation
		for _, q := range reqs {
			cores := float64(q % 8)
			mem := int64(q) << 10
			r, err := n.Reserve(cores, mem)
			if err == nil {
				live = append(live, r)
			}
			u := n.Snapshot()
			if u.ReservedCores > 16 || u.ReservedMem > 1<<20 {
				return false
			}
			// randomly release half the time
			if q%2 == 0 && len(live) > 0 {
				live[0].Release()
				live = live[1:]
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPackages(t *testing.T) {
	n := NewNode(NodeSpec{Name: "x", Cores: 1, MemBytes: 1})
	if got := len(n.PackagePowers()); got != 1 {
		t.Fatalf("default packages = %d, want 1", got)
	}
}

func TestCStatePenalty(t *testing.T) {
	n := NewNode(NodeSpec{Name: "p", Cores: 10, MemBytes: 1 << 30,
		IdleWatts: 100, MaxWatts: 200, CStateWattsPerReservedCore: 1})
	r, _ := n.Reserve(6, 0)
	defer r.Release()
	// 6 reserved, 0 busy -> +6W over idle
	if p := n.Snapshot().PowerWatts; math.Abs(p-106) > 1e-9 {
		t.Fatalf("power = %v, want 106", p)
	}
	rel := n.AddBusy(4) // 4 busy: dyn 40W, idle-reserved 2 -> +2W
	defer rel()
	if p := n.Snapshot().PowerWatts; math.Abs(p-142) > 1e-9 {
		t.Fatalf("power = %v, want 142", p)
	}
	rel2 := n.AddBusy(4) // busy 8 > reserved 6: no penalty
	defer rel2()
	if p := n.Snapshot().PowerWatts; math.Abs(p-180) > 1e-9 {
		t.Fatalf("power = %v, want 180", p)
	}
}
