package cluster

import (
	"errors"
	"testing"
)

func threeNodes() *Cluster {
	a := NewNode(NodeSpec{Name: "a", Cores: 8, MemBytes: 1 << 30})
	b := NewNode(NodeSpec{Name: "b", Cores: 16, MemBytes: 1 << 30})
	c := NewNode(NodeSpec{Name: "c", Cores: 4, MemBytes: 1 << 30})
	return New(a, b, c)
}

func TestPlaceWithNilDefaultsFirstFit(t *testing.T) {
	c := threeNodes()
	r, err := c.PlaceWith(nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node().Spec().Name != "a" {
		t.Fatalf("placed on %s, want a", r.Node().Spec().Name)
	}
}

func TestBestFitPacksTightest(t *testing.T) {
	c := threeNodes()
	// c has 4 free cores: tightest feasible fit for 2 cores.
	r, err := c.PlaceWith(BestFit{}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node().Spec().Name != "c" {
		t.Fatalf("placed on %s, want c", r.Node().Spec().Name)
	}
	// Request too big for c: next tightest is a.
	r2, err := c.PlaceWith(BestFit{}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Node().Spec().Name != "a" {
		t.Fatalf("placed on %s, want a", r2.Node().Spec().Name)
	}
}

func TestWorstFitSpreads(t *testing.T) {
	c := threeNodes()
	r, err := c.PlaceWith(WorstFit{}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node().Spec().Name != "b" {
		t.Fatalf("placed on %s, want b (most free)", r.Node().Spec().Name)
	}
	// After reserving 14 of b's 16 cores, a becomes the most free.
	if _, err := c.Nodes()[1].Reserve(12, 0); err != nil {
		t.Fatal(err)
	}
	r2, err := c.PlaceWith(WorstFit{}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Node().Spec().Name != "a" {
		t.Fatalf("placed on %s, want a", r2.Node().Spec().Name)
	}
}

func TestRoundRobinPlacerCycles(t *testing.T) {
	c := threeNodes()
	p := &RoundRobinPlacer{}
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		r, err := c.PlaceWith(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[r.Node().Spec().Name]++
	}
	if seen["a"] != 2 || seen["b"] != 2 || seen["c"] != 2 {
		t.Fatalf("spread = %v", seen)
	}
}

func TestRoundRobinSkipsFullNodes(t *testing.T) {
	c := threeNodes()
	// Fill node b entirely.
	if _, err := c.Nodes()[1].Reserve(16, 0); err != nil {
		t.Fatal(err)
	}
	p := &RoundRobinPlacer{}
	for i := 0; i < 6; i++ {
		r, err := c.PlaceWith(p, 3, 0)
		if err != nil {
			// a(8/3=2) + c(4/3=1) fit 3 reservations; beyond that
			// exhaustion is correct.
			if !errors.Is(err, ErrInsufficient) {
				t.Fatal(err)
			}
			return
		}
		if r.Node().Spec().Name == "b" {
			t.Fatal("placed on a full node")
		}
	}
}

func TestPlaceWithEmptyCluster(t *testing.T) {
	c := New()
	if _, err := c.PlaceWith(BestFit{}, 1, 0); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
}
