package cluster

import (
	"fmt"
	"sync/atomic"
)

// Placer selects a node for a reservation — the pluggable scheduling
// policy layer the paper lists among the research directions its
// framework enables ("the design of resource management and scheduling
// algorithms"). Place on Cluster uses FirstFit; PlaceWith accepts any
// policy.
type Placer interface {
	// Pick orders candidate nodes for an allocation of cores/mem; the
	// caller tries them in order. Returning an empty slice means no
	// preference (caller uses cluster order).
	Pick(nodes []*Node, cores float64, mem int64) []*Node
}

// FirstFit places on the first node with room, in cluster order — the
// default two-node-testbed behaviour.
type FirstFit struct{}

// Pick implements Placer.
func (FirstFit) Pick(nodes []*Node, cores float64, mem int64) []*Node { return nodes }

// BestFit places on the feasible node with the least remaining cores,
// packing work tightly and leaving whole nodes free for coarse-grained
// reservations.
type BestFit struct{}

// Pick implements Placer.
func (BestFit) Pick(nodes []*Node, cores float64, mem int64) []*Node {
	return sortByFreeCores(nodes, true)
}

// WorstFit places on the node with the most remaining cores, spreading
// load — lower per-node contention at the price of fragmentation.
type WorstFit struct{}

// Pick implements Placer.
func (WorstFit) Pick(nodes []*Node, cores float64, mem int64) []*Node {
	return sortByFreeCores(nodes, false)
}

// RoundRobinPlacer cycles through nodes, the classic spread policy.
type RoundRobinPlacer struct {
	next atomic.Int64
}

// Pick implements Placer.
func (p *RoundRobinPlacer) Pick(nodes []*Node, cores float64, mem int64) []*Node {
	if len(nodes) == 0 {
		return nil
	}
	start := int(p.next.Add(1)-1) % len(nodes)
	out := make([]*Node, 0, len(nodes))
	for i := 0; i < len(nodes); i++ {
		out = append(out, nodes[(start+i)%len(nodes)])
	}
	return out
}

// sortByFreeCores returns nodes ordered by free (unreserved) cores.
func sortByFreeCores(nodes []*Node, ascending bool) []*Node {
	out := append([]*Node(nil), nodes...)
	// insertion sort: node counts are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a := freeCores(out[j-1])
			b := freeCores(out[j])
			if (ascending && b < a) || (!ascending && b > a) {
				out[j-1], out[j] = out[j], out[j-1]
			} else {
				break
			}
		}
	}
	return out
}

func freeCores(n *Node) float64 {
	u := n.Snapshot()
	return u.CapCores - u.ReservedCores
}

// PlaceWith reserves cores/mem using the given policy. A nil placer
// falls back to FirstFit.
func (c *Cluster) PlaceWith(p Placer, cores float64, mem int64) (*Reservation, error) {
	if p == nil {
		p = FirstFit{}
	}
	order := p.Pick(c.nodes, cores, mem)
	if len(order) == 0 {
		order = c.nodes
	}
	var lastErr error
	for _, n := range order {
		r, err := n.Reserve(cores, mem)
		if err == nil {
			return r, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: cluster has no nodes", ErrInsufficient)
	}
	return nil, lastErr
}
