// Package cluster models the compute substrate the paper ran on: a small
// cluster of bare-metal nodes (2× AMD EPYC 7443 per node) shared by the
// serverless platform and the local-container baseline.
//
// A Node tracks two orthogonal quantities over time:
//
//   - reservations — cores and memory *provisioned* to pods or containers
//     (Kubernetes requests / docker --cpus), whether or not they are doing
//     anything. Fine-grained serverless reserves only while pods exist;
//     local containers reserve for the whole run. The time-averaged
//     reservation is the "CPU usage"/"memory usage" the evaluation plots.
//   - live usage — cores actually busy and bytes actually resident,
//     registered by running WfBench invocations. Busy cores drive the
//     RAPL-style power model, which is why the paper finds power roughly
//     equal across paradigms (total work is paradigm-independent and idle
//     power dominates).
package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInsufficient is returned when a reservation cannot fit on a node.
var ErrInsufficient = errors.New("cluster: insufficient resources")

// NodeSpec describes one machine.
type NodeSpec struct {
	Name     string
	Cores    float64 // schedulable cores
	MemBytes int64   // schedulable memory
	Packages int     // CPU sockets, for per-package RAPL readings
	// Power model: watts drawn idle and at full utilization.
	IdleWatts float64
	MaxWatts  float64
	// CStateWattsPerReservedCore is a small penalty per reserved but
	// idle core: pinned cores cannot enter deep sleep states. It is
	// what makes the paper's "NoCR slightly improves power efficiency"
	// observation emerge from the model.
	CStateWattsPerReservedCore float64
}

// Node is a machine with reservation and usage accounting. Safe for
// concurrent use.
type Node struct {
	spec NodeSpec

	mu            sync.Mutex
	reservedCores float64
	reservedMem   int64
	busyCores     float64
	usedMem       int64
}

// NewNode returns a node for the given spec.
func NewNode(spec NodeSpec) *Node {
	if spec.Packages <= 0 {
		spec.Packages = 1
	}
	return &Node{spec: spec}
}

// Spec returns the node's description.
func (n *Node) Spec() NodeSpec { return n.spec }

// Reservation is a grant of cores and memory on a node. Release returns
// the resources; releasing twice is a no-op.
type Reservation struct {
	node  *Node
	cores float64
	mem   int64
	once  sync.Once
}

// Cores returns the reserved core count.
func (r *Reservation) Cores() float64 { return r.cores }

// MemBytes returns the reserved memory.
func (r *Reservation) MemBytes() int64 { return r.mem }

// Node returns the node holding the reservation.
func (r *Reservation) Node() *Node { return r.node }

// Release returns the reserved resources to the node.
func (r *Reservation) Release() {
	r.once.Do(func() {
		r.node.mu.Lock()
		r.node.reservedCores -= r.cores
		r.node.reservedMem -= r.mem
		r.node.mu.Unlock()
	})
}

// Reserve grants cores and mem if they fit within the node's remaining
// capacity; otherwise it returns ErrInsufficient. This is where the
// paper's "memory and CPU limits being reached" failure mode surfaces.
func (n *Node) Reserve(cores float64, mem int64) (*Reservation, error) {
	if cores < 0 || mem < 0 {
		return nil, fmt.Errorf("cluster: negative reservation (%v cores, %d bytes)", cores, mem)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reservedCores+cores > n.spec.Cores || n.reservedMem+mem > n.spec.MemBytes {
		return nil, fmt.Errorf("%w: node %s: want %.1f cores/%d B, free %.1f cores/%d B",
			ErrInsufficient, n.spec.Name, cores, mem,
			n.spec.Cores-n.reservedCores, n.spec.MemBytes-n.reservedMem)
	}
	n.reservedCores += cores
	n.reservedMem += mem
	return &Reservation{node: n, cores: cores, mem: mem}, nil
}

// AddBusy registers cores of live CPU work and returns a function that
// unregisters them. Oversubscription is recorded as-is; Snapshot clamps
// utilization at capacity when deriving power.
func (n *Node) AddBusy(cores float64) (release func()) {
	n.mu.Lock()
	n.busyCores += cores
	n.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			n.mu.Lock()
			n.busyCores -= cores
			n.mu.Unlock()
		})
	}
}

// AddMem registers bytes of live resident memory and returns a function
// that unregisters them.
func (n *Node) AddMem(bytes int64) (release func()) {
	n.mu.Lock()
	n.usedMem += bytes
	n.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			n.mu.Lock()
			n.usedMem -= bytes
			n.mu.Unlock()
		})
	}
}

// Usage is an instantaneous reading of one node (or a cluster total).
type Usage struct {
	ReservedCores float64
	ReservedMem   int64
	BusyCores     float64 // clamped at capacity
	UsedMem       int64
	PowerWatts    float64
	CapCores      float64
	CapMem        int64
}

// Snapshot returns the node's instantaneous usage and modeled power.
func (n *Node) Snapshot() Usage {
	n.mu.Lock()
	busy := n.busyCores
	u := Usage{
		ReservedCores: n.reservedCores,
		ReservedMem:   n.reservedMem,
		UsedMem:       n.usedMem,
		CapCores:      n.spec.Cores,
		CapMem:        n.spec.MemBytes,
	}
	n.mu.Unlock()
	if busy > n.spec.Cores {
		busy = n.spec.Cores
	}
	if busy < 0 {
		busy = 0
	}
	u.BusyCores = busy
	util := 0.0
	if n.spec.Cores > 0 {
		util = busy / n.spec.Cores
	}
	u.PowerWatts = n.spec.IdleWatts + (n.spec.MaxWatts-n.spec.IdleWatts)*util
	if idleReserved := u.ReservedCores - busy; idleReserved > 0 {
		u.PowerWatts += n.spec.CStateWattsPerReservedCore * idleReserved
	}
	return u
}

// PackagePowers splits the node's modeled power across its CPU packages,
// mirroring the per-package denki.rapl.rate[...] endpoints the paper
// samples with pmdumptext.
func (n *Node) PackagePowers() []float64 {
	u := n.Snapshot()
	out := make([]float64, n.spec.Packages)
	per := u.PowerWatts / float64(n.spec.Packages)
	for i := range out {
		out[i] = per
	}
	return out
}

// Cluster is a set of nodes with first-fit placement.
type Cluster struct {
	nodes []*Node
}

// New returns a cluster of the given nodes.
func New(nodes ...*Node) *Cluster {
	return &Cluster{nodes: nodes}
}

// PaperTestbed reproduces the AD appendix hardware: a master node with
// 2× EPYC 7443 (48 cores) and 256 GB, and a worker node with the same CPUs
// and 192 GB. Idle/max watts follow typical dual-socket EPYC figures; the
// shape of the power results depends only on idle power being a large
// fraction of peak, which holds for any server.
func PaperTestbed() *Cluster {
	const gb = int64(1) << 30
	master := NewNode(NodeSpec{
		Name: "master", Cores: 48, MemBytes: 256 * gb, Packages: 2,
		IdleWatts: 120, MaxWatts: 520, CStateWattsPerReservedCore: 0.15,
	})
	worker := NewNode(NodeSpec{
		Name: "worker", Cores: 48, MemBytes: 192 * gb, Packages: 2,
		IdleWatts: 120, MaxWatts: 520, CStateWattsPerReservedCore: 0.15,
	})
	return New(master, worker)
}

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Place reserves cores/mem on the first node with room, in node order —
// the behaviour of a simple scheduler on a two-node testbed.
func (c *Cluster) Place(cores float64, mem int64) (*Reservation, error) {
	var lastErr error
	for _, n := range c.nodes {
		r, err := n.Reserve(cores, mem)
		if err == nil {
			return r, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: cluster has no nodes", ErrInsufficient)
	}
	return nil, lastErr
}

// Snapshot sums instantaneous usage over all nodes.
func (c *Cluster) Snapshot() Usage {
	var total Usage
	for _, n := range c.nodes {
		u := n.Snapshot()
		total.ReservedCores += u.ReservedCores
		total.ReservedMem += u.ReservedMem
		total.BusyCores += u.BusyCores
		total.UsedMem += u.UsedMem
		total.PowerWatts += u.PowerWatts
		total.CapCores += u.CapCores
		total.CapMem += u.CapMem
	}
	return total
}

// TotalCores returns the cluster's schedulable cores.
func (c *Cluster) TotalCores() float64 {
	var t float64
	for _, n := range c.nodes {
		t += n.spec.Cores
	}
	return t
}

// TotalMem returns the cluster's schedulable memory.
func (c *Cluster) TotalMem() int64 {
	var t int64
	for _, n := range c.nodes {
		t += n.spec.MemBytes
	}
	return t
}
