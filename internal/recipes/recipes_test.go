package recipes

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNamesComplete(t *testing.T) {
	want := []string{"blast", "bwa", "cycles", "epigenomics", "genomes", "seismology", "srasearch"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestForName(t *testing.T) {
	r, err := ForName("blast")
	if err != nil {
		t.Fatal(err)
	}
	if r.DisplayName() != "Blast" {
		t.Fatalf("DisplayName = %q", r.DisplayName())
	}
	if _, err := ForName("nope"); err == nil {
		t.Fatal("unknown recipe accepted")
	}
}

func TestAllOrdered(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All returned %d recipes", len(all))
	}
	for i, r := range all {
		if r.Name() != Names()[i] {
			t.Fatalf("All()[%d] = %s", i, r.Name())
		}
	}
}

func TestGroupsMatchPaper(t *testing.T) {
	groups := map[string]int{
		"blast": 1, "bwa": 1, "genomes": 1, "seismology": 1, "srasearch": 1,
		"cycles": 2, "epigenomics": 2,
	}
	for name, want := range groups {
		r, _ := ForName(name)
		if r.Group() != want {
			t.Errorf("%s group = %d, want %d", name, r.Group(), want)
		}
	}
}

func TestGenerateAllRecipesValidate(t *testing.T) {
	for _, r := range All() {
		for _, size := range []int{r.MinTasks(), 50, 250} {
			w, err := r.Generate(size, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatalf("%s size %d: %v", r.Name(), size, err)
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("%s size %d invalid: %v", r.Name(), size, err)
			}
			if w.Len() < size || w.Len() > size+8 {
				t.Fatalf("%s requested %d got %d tasks", r.Name(), size, w.Len())
			}
		}
	}
}

func TestGenerateTooSmall(t *testing.T) {
	for _, r := range All() {
		if _, err := r.Generate(r.MinTasks()-1, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s accepted size below MinTasks", r.Name())
		}
	}
}

func TestGenerateDeterministicShape(t *testing.T) {
	for _, r := range All() {
		a, err := r.Generate(60, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Generate(60, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different workflows", r.Name())
		}
	}
}

func TestBlastStructure(t *testing.T) {
	r, _ := ForName("blast")
	w, err := r.Generate(100, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 100 {
		t.Fatalf("blast is exact-size; got %d", w.Len())
	}
	cats := w.Categories()
	if cats["blastall"] != 97 || cats["split_fasta"] != 1 || cats["cat"] != 1 || cats["cat_blast"] != 1 {
		t.Fatalf("categories = %v", cats)
	}
	phases, err := w.Phases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("blast phases = %d, want 3", len(phases))
	}
	if len(phases[1]) != 97 {
		t.Fatalf("blast dense phase width = %d, want 97", len(phases[1]))
	}
}

func TestSeismologyStructure(t *testing.T) {
	r, _ := ForName("seismology")
	w, _ := r.Generate(200, rand.New(rand.NewSource(3)))
	phases, err := w.Phases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("seismology phases = %d, want 2", len(phases))
	}
	if len(phases[0]) != 199 || len(phases[1]) != 1 {
		t.Fatalf("widths = %d,%d", len(phases[0]), len(phases[1]))
	}
}

func TestEpigenomicsIsMultiPhase(t *testing.T) {
	r, _ := ForName("epigenomics")
	w, _ := r.Generate(100, rand.New(rand.NewSource(4)))
	phases, err := w.Phases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) < 8 {
		t.Fatalf("epigenomics phases = %d, want >= 8 (group-2 shape)", len(phases))
	}
	cats := w.Categories()
	if len(cats) != 9 {
		t.Fatalf("epigenomics categories = %v, want 9 types", cats)
	}
}

func TestCyclesIsMultiPhase(t *testing.T) {
	r, _ := ForName("cycles")
	w, _ := r.Generate(120, rand.New(rand.NewSource(5)))
	phases, err := w.Phases()
	if err != nil {
		t.Fatal(err)
	}
	// 4 phases per season plus the final plots; 120 tasks yield 4 seasons.
	if len(phases) != 17 {
		t.Fatalf("cycles phases = %d, want 17", len(phases))
	}
	if got := w.Categories()["cycles_plots"]; got != 1 {
		t.Fatalf("cycles_plots count = %d", got)
	}
}

func TestGenomesStructure(t *testing.T) {
	r, _ := ForName("genomes")
	w, _ := r.Generate(200, rand.New(rand.NewSource(6)))
	cats := w.Categories()
	if cats["individuals_merge"] == 0 || cats["sifting"] == 0 {
		t.Fatalf("categories = %v", cats)
	}
	if cats["mutation_overlap"] != cats["frequency"] {
		t.Fatalf("overlap/frequency mismatch: %v", cats)
	}
	if cats["individuals_merge"] != cats["sifting"] {
		t.Fatalf("one merge and one sifting per chromosome: %v", cats)
	}
}

func TestSrasearchExactAndChained(t *testing.T) {
	r, _ := ForName("srasearch")
	for _, size := range []int{5, 6, 7, 50, 101} {
		w, err := r.Generate(size, rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != size {
			t.Fatalf("size %d: got %d tasks", size, w.Len())
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
	w, _ := r.Generate(50, rand.New(rand.NewSource(8)))
	phases, _ := w.Phases()
	if len(phases) != 4 {
		t.Fatalf("srasearch phases = %d, want 4", len(phases))
	}
}

func TestBWAStructure(t *testing.T) {
	r, _ := ForName("bwa")
	w, _ := r.Generate(54, rand.New(rand.NewSource(9)))
	if w.Len() != 54 {
		t.Fatalf("bwa exact size: got %d", w.Len())
	}
	cats := w.Categories()
	if cats["bwa"] != 50 {
		t.Fatalf("bwa aligners = %d, want 50", cats["bwa"])
	}
	phases, _ := w.Phases()
	if len(phases) != 4 {
		t.Fatalf("bwa phases = %d, want 4", len(phases))
	}
}

func TestGroup1IsDenser(t *testing.T) {
	// Group-1 recipes must have a dominant phase much wider than any
	// group-2 recipe at the same size — the paper's characterization.
	size := 120
	minG1 := 1 << 30
	maxG2 := 0
	for _, r := range All() {
		w, err := r.Generate(size, rand.New(rand.NewSource(10)))
		if err != nil {
			t.Fatal(err)
		}
		s, err := w.ComputeStats()
		if err != nil {
			t.Fatal(err)
		}
		switch r.Group() {
		case 1:
			if s.MaxPhaseWidth < minG1 {
				minG1 = s.MaxPhaseWidth
			}
		case 2:
			if s.MaxPhaseWidth > maxG2 {
				maxG2 = s.MaxPhaseWidth
			}
		}
	}
	if minG1 <= maxG2 {
		t.Fatalf("group-1 min max-width %d <= group-2 max %d", minG1, maxG2)
	}
}

func TestProfilesAppliedToTasks(t *testing.T) {
	r, _ := ForName("blast")
	w, _ := r.Generate(20, rand.New(rand.NewSource(11)))
	for _, task := range w.Tasks {
		arg := task.Command.Arguments[0]
		p := blastProfiles[task.Category]
		if arg.PercentCPU != p.PercentCPU {
			t.Fatalf("task %s percent-cpu = %v, want %v", task.Name, arg.PercentCPU, p.PercentCPU)
		}
		if arg.CPUWork < p.CPUWork*0.8-1e-9 || arg.CPUWork > p.CPUWork*1.2+1e-9 {
			t.Fatalf("task %s cpu-work %v outside jitter of %v", task.Name, arg.CPUWork, p.CPUWork)
		}
		if arg.MemBytes != p.MemBytes {
			t.Fatalf("task %s mem %d, want %d", task.Name, arg.MemBytes, p.MemBytes)
		}
		if len(arg.Out) != 1 {
			t.Fatalf("task %s has %d outputs", task.Name, len(arg.Out))
		}
	}
}

func TestRootTasksHaveExternalInputs(t *testing.T) {
	for _, r := range All() {
		w, _ := r.Generate(60, rand.New(rand.NewSource(12)))
		ext := w.ExternalInputs()
		if len(ext) == 0 {
			t.Errorf("%s: no external inputs", r.Name())
		}
	}
}

func TestQuickAllSizesValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		size := 30 + int(sz)%200
		for _, r := range All() {
			w, err := r.Generate(size, rand.New(rand.NewSource(seed)))
			if err != nil {
				return false
			}
			if err := w.Validate(); err != nil {
				t.Logf("%s size %d: %v", r.Name(), size, err)
				return false
			}
			if w.Len() < size || w.Len() > size+8 {
				t.Logf("%s size %d -> %d", r.Name(), size, w.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
