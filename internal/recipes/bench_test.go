package recipes

import (
	"math/rand"
	"testing"
)

func BenchmarkGenerateBlast1000(b *testing.B) {
	r, _ := ForName("blast")
	for i := 0; i < b.N; i++ {
		if _, err := r.Generate(1000, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateEpigenomics1000(b *testing.B) {
	r, _ := ForName("epigenomics")
	for i := 0; i < b.N; i++ {
		if _, err := r.Generate(1000, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateAllRecipes250(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range All() {
			if _, err := r.Generate(250, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
		}
	}
}
