// Package recipes is the WfChef equivalent of this reproduction: it holds
// structural recipes for the seven HPC scientific workflows the paper
// generates with WfCommons — Blast, BWA, Cycles, Epigenomics, Genomes
// (1000Genome), Seismology, and Srasearch — and instantiates synthetic
// workflow instances of a requested size that preserve each application's
// published DAG shape (fan-out density, phase count, and function-type
// mix, the three facets of the paper's Figure 3).
//
// The paper splits the applications into two behavioural groups
// (Section V-D): group 1 (Blast, BWA, Genomes, Seismology, Srasearch) is
// dominated by one dense phase of identical functions invoked
// simultaneously; group 2 (Cycles, Epigenomics) has many phases with a
// broader diversity of function types. The recipes reproduce exactly
// that distinction.
package recipes

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"wfserverless/internal/wfformat"
)

// Profile carries the per-category execution parameters a generated task
// receives: the WfBench knobs (percent-cpu, cpu-work), its memory ballast
// and its output size. CPUWork of 100 corresponds to one nominal second
// of single-core busy work at 100% duty (before experiment time scaling).
type Profile struct {
	PercentCPU float64
	CPUWork    float64
	OutBytes   int64
	MemBytes   int64
}

// Recipe generates instances of one application's workflow type.
type Recipe interface {
	// Name is the registry key, e.g. "blast".
	Name() string
	// DisplayName is the paper's label, e.g. "Blast".
	DisplayName() string
	// Group returns 1 or 2 per the paper's behavioural grouping.
	Group() int
	// MinTasks is the smallest instantiable workflow.
	MinTasks() int
	// Generate builds a workflow with at least numTasks tasks (recipes
	// with structural granularity may exceed the request by a few
	// tasks, as WfChef does). The rng drives size jitter only; the DAG
	// shape is deterministic in numTasks.
	Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error)
}

// registry of all recipes, keyed by Name.
var registry = map[string]Recipe{}

func register(r Recipe) { registry[r.Name()] = r }

func init() {
	register(blastRecipe{})
	register(bwaRecipe{})
	register(cyclesRecipe{})
	register(epigenomicsRecipe{})
	register(genomesRecipe{})
	register(seismologyRecipe{})
	register(srasearchRecipe{})
}

// Names returns the registered recipe names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ForName returns the recipe registered under name.
func ForName(name string) (Recipe, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("recipes: unknown recipe %q (have %v)", name, Names())
	}
	return r, nil
}

// All returns every registered recipe, sorted by name.
func All() []Recipe {
	out := make([]Recipe, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// builder assembles a workflow from category-profiled tasks.
type builder struct {
	w        *wfformat.Workflow
	rng      *rand.Rand
	profiles map[string]Profile
	next     int
}

func newBuilder(name string, rng *rand.Rand, profiles map[string]Profile) *builder {
	w := wfformat.New(name)
	w.CreatedAt = time.Unix(0, 0).UTC().Format(time.RFC3339)
	return &builder{w: w, rng: rng, profiles: profiles, next: 1}
}

// jitter scales v by a uniform factor in [0.8, 1.2].
func (b *builder) jitter(v float64) float64 {
	return v * (0.8 + 0.4*b.rng.Float64())
}

// task appends one task of the given category whose inputs are all output
// files of its parents (or a synthetic external input for roots), and
// links it to them. It panics on internal inconsistencies, which the
// recipe tests would catch immediately.
func (b *builder) task(category string, parents ...string) string {
	p, ok := b.profiles[category]
	if !ok {
		panic(fmt.Sprintf("recipes: no profile for category %q", category))
	}
	name := fmt.Sprintf("%s_%08d", category, b.next)
	b.next++
	var inputs []string
	var files []wfformat.File
	if len(parents) == 0 {
		in := name + "_input.txt"
		inputs = append(inputs, in)
		files = append(files, wfformat.File{Link: wfformat.LinkInput, Name: in, SizeInBytes: int64(b.jitter(float64(p.OutBytes)))})
	}
	for _, parent := range parents {
		pt := b.w.Tasks[parent]
		if pt == nil {
			panic(fmt.Sprintf("recipes: unknown parent %q", parent))
		}
		for _, f := range pt.Files {
			if f.Link == wfformat.LinkOutput {
				inputs = append(inputs, f.Name)
				files = append(files, wfformat.File{Link: wfformat.LinkInput, Name: f.Name, SizeInBytes: f.SizeInBytes})
			}
		}
	}
	outName := name + "_output.txt"
	outSize := int64(b.jitter(float64(p.OutBytes)))
	files = append(files, wfformat.File{Link: wfformat.LinkOutput, Name: outName, SizeInBytes: outSize})
	cpuWork := b.jitter(p.CPUWork)
	t := &wfformat.Task{
		Name:     name,
		Type:     wfformat.TypeCompute,
		Cores:    1,
		ID:       fmt.Sprintf("%08d", b.next-1),
		Category: category,
		Command: wfformat.Command{
			Program: "wfbench",
			Arguments: []wfformat.Argument{{
				Name:       name,
				PercentCPU: p.PercentCPU,
				CPUWork:    cpuWork,
				MemBytes:   p.MemBytes,
				Out:        map[string]int64{outName: outSize},
				Inputs:     inputs,
			}},
		},
		Files:            files,
		RuntimeInSeconds: cpuWork / 100,
	}
	if err := b.w.AddTask(t); err != nil {
		panic(err)
	}
	for _, parent := range parents {
		if err := b.w.Link(parent, name); err != nil {
			panic(err)
		}
	}
	return name
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// ---------------------------------------------------------------------
// Blast: split_fasta -> N x blastall -> {cat_blast, cat}
// One very dense middle phase of identical functions (group 1).
// ---------------------------------------------------------------------

type blastRecipe struct{}

func (blastRecipe) Name() string        { return "blast" }
func (blastRecipe) DisplayName() string { return "Blast" }
func (blastRecipe) Group() int          { return 1 }
func (blastRecipe) MinTasks() int       { return 4 }

var blastProfiles = map[string]Profile{
	"split_fasta": {PercentCPU: 0.6, CPUWork: 80, OutBytes: 200 * kb, MemBytes: 64 * mb},
	"blastall":    {PercentCPU: 0.9, CPUWork: 100, OutBytes: 40 * kb, MemBytes: 128 * mb},
	"cat_blast":   {PercentCPU: 0.5, CPUWork: 60, OutBytes: 400 * kb, MemBytes: 64 * mb},
	"cat":         {PercentCPU: 0.5, CPUWork: 40, OutBytes: 400 * kb, MemBytes: 32 * mb},
}

func (r blastRecipe) Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error) {
	if numTasks < r.MinTasks() {
		return nil, fmt.Errorf("recipes: blast needs >= %d tasks, got %d", r.MinTasks(), numTasks)
	}
	b := newBuilder("Blast", rng, blastProfiles)
	split := b.task("split_fasta")
	n := numTasks - 3
	blasts := make([]string, n)
	for i := range blasts {
		blasts[i] = b.task("blastall", split)
	}
	b.task("cat_blast", blasts...)
	b.task("cat", blasts...)
	return b.w, nil
}

// ---------------------------------------------------------------------
// BWA: bwa_index + fastq_reduce -> N x bwa -> cat_bwa -> cat
// Dense alignment phase (group 1).
// ---------------------------------------------------------------------

type bwaRecipe struct{}

func (bwaRecipe) Name() string        { return "bwa" }
func (bwaRecipe) DisplayName() string { return "BWA" }
func (bwaRecipe) Group() int          { return 1 }
func (bwaRecipe) MinTasks() int       { return 5 }

var bwaProfiles = map[string]Profile{
	"bwa_index":    {PercentCPU: 0.8, CPUWork: 90, OutBytes: 3 * mb, MemBytes: 256 * mb},
	"fastq_reduce": {PercentCPU: 0.5, CPUWork: 70, OutBytes: 500 * kb, MemBytes: 64 * mb},
	"bwa":          {PercentCPU: 0.9, CPUWork: 110, OutBytes: 100 * kb, MemBytes: 192 * mb},
	"cat_bwa":      {PercentCPU: 0.5, CPUWork: 50, OutBytes: 1 * mb, MemBytes: 64 * mb},
	"cat":          {PercentCPU: 0.5, CPUWork: 40, OutBytes: 1 * mb, MemBytes: 32 * mb},
}

func (r bwaRecipe) Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error) {
	if numTasks < r.MinTasks() {
		return nil, fmt.Errorf("recipes: bwa needs >= %d tasks, got %d", r.MinTasks(), numTasks)
	}
	b := newBuilder("BWA", rng, bwaProfiles)
	index := b.task("bwa_index")
	reduce := b.task("fastq_reduce")
	n := numTasks - 4
	aligns := make([]string, n)
	for i := range aligns {
		aligns[i] = b.task("bwa", index, reduce)
	}
	merge := b.task("cat_bwa", aligns...)
	b.task("cat", merge)
	return b.w, nil
}

// ---------------------------------------------------------------------
// Cycles (agroecosystem): S sequential crop seasons, each
// baseline_cycles -> F x cycles_fertilizer_increase -> fi_output_parser
// -> output_summary, where a season's summary seeds the next season's
// baseline (multi-year rotation), joined by a final cycles_plots. Many
// phases with diverse function types and moderate widths (group 2).
// ---------------------------------------------------------------------

type cyclesRecipe struct{}

func (cyclesRecipe) Name() string        { return "cycles" }
func (cyclesRecipe) DisplayName() string { return "Cycles" }
func (cyclesRecipe) Group() int          { return 2 }
func (cyclesRecipe) MinTasks() int       { return 5 }

var cyclesProfiles = map[string]Profile{
	"baseline_cycles":            {PercentCPU: 0.8, CPUWork: 90, OutBytes: 150 * kb, MemBytes: 96 * mb},
	"cycles_fertilizer_increase": {PercentCPU: 0.9, CPUWork: 100, OutBytes: 100 * kb, MemBytes: 96 * mb},
	"cycles_fi_output_parser":    {PercentCPU: 0.4, CPUWork: 40, OutBytes: 50 * kb, MemBytes: 48 * mb},
	"cycles_output_summary":      {PercentCPU: 0.4, CPUWork: 40, OutBytes: 50 * kb, MemBytes: 48 * mb},
	"cycles_plots":               {PercentCPU: 0.6, CPUWork: 70, OutBytes: 300 * kb, MemBytes: 128 * mb},
}

func (r cyclesRecipe) Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error) {
	if numTasks < r.MinTasks() {
		return nil, fmt.Errorf("recipes: cycles needs >= %d tasks, got %d", r.MinTasks(), numTasks)
	}
	// total = 1 (plots) + sum over seasons of (F_s + 3); F_s >= 1.
	seasons := (numTasks - 1) / 24
	if seasons < 2 {
		seasons = 2
	}
	budget := numTasks - 1 - 3*seasons // sum of F_s
	for budget < seasons {             // too many seasons for the budget
		seasons--
		budget = numTasks - 1 - 3*seasons
	}
	if seasons < 1 {
		seasons = 1
		budget = numTasks - 4
	}
	b := newBuilder("Cycles", rng, cyclesProfiles)
	var summaries []string
	prevSummary := ""
	for s := 0; s < seasons; s++ {
		f := budget / (seasons - s)
		budget -= f
		var base string
		if prevSummary == "" {
			base = b.task("baseline_cycles")
		} else {
			base = b.task("baseline_cycles", prevSummary)
		}
		ferts := make([]string, f)
		for i := range ferts {
			ferts[i] = b.task("cycles_fertilizer_increase", base)
		}
		parser := b.task("cycles_fi_output_parser", ferts...)
		prevSummary = b.task("cycles_output_summary", parser)
		summaries = append(summaries, prevSummary)
	}
	b.task("cycles_plots", summaries...)
	return b.w, nil
}

// ---------------------------------------------------------------------
// Epigenomics: L sequencing lanes, each a pipeline of equal-width
// chains fastq_split -> W x (filter_contams -> sol2sanger -> fastq2bfq
// -> map) -> map_merge, joined by chr21 -> maq_index -> pileup.
// Long multi-phase pipeline (group 2).
// ---------------------------------------------------------------------

type epigenomicsRecipe struct{}

func (epigenomicsRecipe) Name() string        { return "epigenomics" }
func (epigenomicsRecipe) DisplayName() string { return "Epigenomics" }
func (epigenomicsRecipe) Group() int          { return 2 }
func (epigenomicsRecipe) MinTasks() int       { return 9 }

var epigenomicsProfiles = map[string]Profile{
	"fastq_split":    {PercentCPU: 0.5, CPUWork: 60, OutBytes: 300 * kb, MemBytes: 64 * mb},
	"filter_contams": {PercentCPU: 0.7, CPUWork: 80, OutBytes: 250 * kb, MemBytes: 96 * mb},
	"sol2sanger":     {PercentCPU: 0.6, CPUWork: 60, OutBytes: 250 * kb, MemBytes: 64 * mb},
	"fastq2bfq":      {PercentCPU: 0.6, CPUWork: 60, OutBytes: 200 * kb, MemBytes: 64 * mb},
	"map":            {PercentCPU: 0.9, CPUWork: 120, OutBytes: 150 * kb, MemBytes: 192 * mb},
	"map_merge":      {PercentCPU: 0.5, CPUWork: 50, OutBytes: 500 * kb, MemBytes: 96 * mb},
	"chr21":          {PercentCPU: 0.6, CPUWork: 60, OutBytes: 200 * kb, MemBytes: 64 * mb},
	"maq_index":      {PercentCPU: 0.7, CPUWork: 70, OutBytes: 200 * kb, MemBytes: 96 * mb},
	"pileup":         {PercentCPU: 0.7, CPUWork: 80, OutBytes: 400 * kb, MemBytes: 96 * mb},
}

func (r epigenomicsRecipe) Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error) {
	if numTasks < r.MinTasks() {
		return nil, fmt.Errorf("recipes: epigenomics needs >= %d tasks, got %d", r.MinTasks(), numTasks)
	}
	// total = 3 (chr21, maq_index, pileup) + sum over lanes of (4*W_l + 2).
	lanes := (numTasks - 3) / 26
	if lanes < 1 {
		lanes = 1
	}
	// Choose per-lane widths to reach at least numTasks (may overshoot
	// by up to 3 tasks, matching WfChef's approximate sizing).
	budget := numTasks - 3 - 2*lanes // tasks available for chains, 4 per chain
	for budget < 4*lanes {           // each lane needs at least one chain
		lanes--
		budget = numTasks - 3 - 2*lanes
	}
	b := newBuilder("Epigenomics", rng, epigenomicsProfiles)
	var merges []string
	remaining := budget
	for l := 0; l < lanes; l++ {
		w := remaining / 4 / (lanes - l)
		if l == lanes-1 {
			w = (remaining + 3) / 4 // round up on the last lane
		}
		if w < 1 {
			w = 1
		}
		remaining -= w * 4
		split := b.task("fastq_split")
		maps := make([]string, w)
		for i := 0; i < w; i++ {
			fc := b.task("filter_contams", split)
			ss := b.task("sol2sanger", fc)
			fb := b.task("fastq2bfq", ss)
			maps[i] = b.task("map", fb)
		}
		merges = append(merges, b.task("map_merge", maps...))
	}
	chr := b.task("chr21", merges...)
	idx := b.task("maq_index", chr)
	b.task("pileup", idx)
	return b.w, nil
}

// ---------------------------------------------------------------------
// Genomes (1000Genome): per chromosome, N x individuals ->
// individuals_merge, plus an independent sifting root; mutation_overlap
// and frequency per population consume merge+sifting. Wide phases
// (group 1).
// ---------------------------------------------------------------------

type genomesRecipe struct{}

func (genomesRecipe) Name() string        { return "genomes" }
func (genomesRecipe) DisplayName() string { return "Genomes" }
func (genomesRecipe) Group() int          { return 1 }
func (genomesRecipe) MinTasks() int       { return 7 }

var genomesProfiles = map[string]Profile{
	"individuals":       {PercentCPU: 0.9, CPUWork: 100, OutBytes: 200 * kb, MemBytes: 128 * mb},
	"individuals_merge": {PercentCPU: 0.6, CPUWork: 60, OutBytes: 800 * kb, MemBytes: 128 * mb},
	"sifting":           {PercentCPU: 0.7, CPUWork: 70, OutBytes: 100 * kb, MemBytes: 64 * mb},
	"mutation_overlap":  {PercentCPU: 0.8, CPUWork: 90, OutBytes: 150 * kb, MemBytes: 96 * mb},
	"frequency":         {PercentCPU: 0.8, CPUWork: 90, OutBytes: 150 * kb, MemBytes: 96 * mb},
}

func (r genomesRecipe) Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error) {
	if numTasks < r.MinTasks() {
		return nil, fmt.Errorf("recipes: genomes needs >= %d tasks, got %d", r.MinTasks(), numTasks)
	}
	const pops = 2 // populations analysed per chromosome
	// per chromosome: N_c individuals + merge + sifting + 2*pops
	chroms := numTasks / 40
	if chroms < 1 {
		chroms = 1
	}
	budget := numTasks - chroms*(2+2*pops) // sum of N_c
	for budget < chroms {
		chroms--
		budget = numTasks - chroms*(2+2*pops)
	}
	b := newBuilder("Genomes", rng, genomesProfiles)
	for c := 0; c < chroms; c++ {
		n := budget / (chroms - c)
		budget -= n
		inds := make([]string, n)
		for i := range inds {
			inds[i] = b.task("individuals")
		}
		merge := b.task("individuals_merge", inds...)
		sift := b.task("sifting")
		for p := 0; p < pops; p++ {
			b.task("mutation_overlap", merge, sift)
			b.task("frequency", merge, sift)
		}
	}
	return b.w, nil
}

// ---------------------------------------------------------------------
// Seismology: N x sg1_iter_decon -> wrapper_sift_stf_by_misfit.
// The densest two-phase structure (group 1).
// ---------------------------------------------------------------------

type seismologyRecipe struct{}

func (seismologyRecipe) Name() string        { return "seismology" }
func (seismologyRecipe) DisplayName() string { return "Seismology" }
func (seismologyRecipe) Group() int          { return 1 }
func (seismologyRecipe) MinTasks() int       { return 2 }

var seismologyProfiles = map[string]Profile{
	"sg1_iter_decon":             {PercentCPU: 0.9, CPUWork: 100, OutBytes: 50 * kb, MemBytes: 96 * mb},
	"wrapper_sift_stf_by_misfit": {PercentCPU: 0.6, CPUWork: 60, OutBytes: 300 * kb, MemBytes: 64 * mb},
}

func (r seismologyRecipe) Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error) {
	if numTasks < r.MinTasks() {
		return nil, fmt.Errorf("recipes: seismology needs >= %d tasks, got %d", r.MinTasks(), numTasks)
	}
	b := newBuilder("Seismology", rng, seismologyProfiles)
	decons := make([]string, numTasks-1)
	for i := range decons {
		decons[i] = b.task("sg1_iter_decon")
	}
	b.task("wrapper_sift_stf_by_misfit", decons...)
	return b.w, nil
}

// ---------------------------------------------------------------------
// Srasearch: bowtie2_build + N x (prefetch -> fasterq_dump -> bowtie2)
// -> merge, with up to two extra index-only bowtie2 tasks to hit the
// requested size exactly. Parallel chains (group 1).
// ---------------------------------------------------------------------

type srasearchRecipe struct{}

func (srasearchRecipe) Name() string        { return "srasearch" }
func (srasearchRecipe) DisplayName() string { return "Srasearch" }
func (srasearchRecipe) Group() int          { return 1 }
func (srasearchRecipe) MinTasks() int       { return 5 }

var srasearchProfiles = map[string]Profile{
	"bowtie2_build": {PercentCPU: 0.8, CPUWork: 90, OutBytes: 2 * mb, MemBytes: 256 * mb},
	"prefetch":      {PercentCPU: 0.3, CPUWork: 40, OutBytes: 500 * kb, MemBytes: 64 * mb},
	"fasterq_dump":  {PercentCPU: 0.5, CPUWork: 60, OutBytes: 800 * kb, MemBytes: 96 * mb},
	"bowtie2":       {PercentCPU: 0.9, CPUWork: 110, OutBytes: 200 * kb, MemBytes: 192 * mb},
	"merge":         {PercentCPU: 0.5, CPUWork: 50, OutBytes: 1 * mb, MemBytes: 64 * mb},
}

func (r srasearchRecipe) Generate(numTasks int, rng *rand.Rand) (*wfformat.Workflow, error) {
	if numTasks < r.MinTasks() {
		return nil, fmt.Errorf("recipes: srasearch needs >= %d tasks, got %d", r.MinTasks(), numTasks)
	}
	b := newBuilder("Srasearch", rng, srasearchProfiles)
	build := b.task("bowtie2_build")
	n := (numTasks - 2) / 3
	extra := (numTasks - 2) % 3 // index-only bowtie2 tasks
	var aligns []string
	for i := 0; i < n; i++ {
		pf := b.task("prefetch")
		fd := b.task("fasterq_dump", pf)
		aligns = append(aligns, b.task("bowtie2", fd, build))
	}
	for i := 0; i < extra; i++ {
		aligns = append(aligns, b.task("bowtie2", build))
	}
	b.task("merge", aligns...)
	return b.w, nil
}
