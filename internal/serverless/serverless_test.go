package serverless

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

// fastOpts returns options with aggressive time scaling so tests finish
// in milliseconds.
func fastOpts(c *cluster.Cluster, d sharedfs.Drive) Options {
	return Options{
		Cluster:           c,
		Drive:             d,
		TimeScale:         0.002, // 1 paper-second = 2ms
		ColdStart:         1,     // 2ms wall
		AutoscalePeriod:   1,     // 2ms wall
		StableWindow:      10,    // 20ms wall
		PodOverheadMem:    10 << 20,
		WorkerOverheadMem: 1 << 20,
		PodOverheadCPU:    0.01,
		InputWait:         2,
	}
}

func startPlatform(t *testing.T, opts Options) *Platform {
	t.Helper()
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

func benchReq(name string, work float64) *wfbench.Request {
	return &wfbench.Request{
		Name:       name,
		PercentCPU: 0.9,
		CPUWork:    work,
		MemBytes:   4 << 20,
		Out:        map[string]int64{name + "_out": 10},
	}
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached: %s", msg)
}

func TestServiceConfigValidate(t *testing.T) {
	cases := []struct {
		cfg ServiceConfig
		ok  bool
	}{
		{ServiceConfig{Name: "s", Workers: 1}, true},
		{ServiceConfig{Name: "", Workers: 1}, false},
		{ServiceConfig{Name: "a/b", Workers: 1}, false},
		{ServiceConfig{Name: "s", Workers: 0}, false},
		{ServiceConfig{Name: "s", Workers: 1, MinScale: 2, MaxScale: 1}, false},
		{ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: -1}, false},
	}
	for i, c := range cases {
		if err := c.cfg.validate(); (err == nil) != c.ok {
			t.Errorf("case %d: err=%v want ok=%v", i, err, c.ok)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing cluster/drive accepted")
	}
	if _, err := New(Options{Cluster: cluster.PaperTestbed(), Drive: sharedfs.NewMem(), TimeScale: -1}); err == nil {
		t.Fatal("negative TimeScale accepted")
	}
}

func TestScaleFromZeroAndInvoke(t *testing.T) {
	c := cluster.PaperTestbed()
	p := startPlatform(t, fastOpts(c, sharedfs.NewMem()))
	err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 2, CPURequestPerWorker: 1, MemRequestPerWorker: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if p.Pods() != 0 {
		t.Fatalf("pods before traffic = %d, want 0 (scale to zero)", p.Pods())
	}
	resp, err := p.Invoke(context.Background(), "wfbench", benchReq("f1", 50))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Pod == "" {
		t.Fatalf("resp = %+v", resp)
	}
	if p.ColdStarts() < 1 {
		t.Fatal("no cold start recorded")
	}
	if p.Requests() != 1 {
		t.Fatalf("requests = %d", p.Requests())
	}
}

func TestInvokeUnknownService(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if _, err := p.Invoke(context.Background(), "ghost", benchReq("f", 1)); err == nil {
		t.Fatal("unknown service accepted")
	}
}

func TestMinScaleWarmPods(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	err := p.Apply(ServiceConfig{Name: "warm", Workers: 1, MinScale: 3, CPURequestPerWorker: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Pods(); got != 3 {
		t.Fatalf("pods = %d, want 3", got)
	}
	// MinScale pods survive idleness.
	time.Sleep(60 * time.Millisecond) // >> stable window
	if got := p.Pods(); got != 3 {
		t.Fatalf("pods after idle = %d, want 3 (min scale)", got)
	}
}

func TestAutoscaleUpAndDown(t *testing.T) {
	c := cluster.PaperTestbed()
	p := startPlatform(t, fastOpts(c, sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "s", benchReq(fmt.Sprintf("f%d", i), 400)); err != nil {
				t.Errorf("invoke %d: %v", i, err)
			}
		}(i)
	}
	waitUntil(t, 5*time.Second, func() bool { return p.Pods() >= 4 }, "autoscaler never scaled up")
	wg.Wait()
	// After the burst, pods idle past the stable window are reclaimed
	// down to zero.
	waitUntil(t, 5*time.Second, func() bool { return p.Pods() == 0 }, "autoscaler never scaled to zero")
	// Reservations returned to the cluster.
	waitUntil(t, time.Second, func() bool { return c.Snapshot().ReservedCores == 0 }, "reservations leaked")
	if got := c.Snapshot().UsedMem; got != 0 {
		t.Fatalf("leaked memory: %d", got)
	}
}

func TestMaxScaleRespected(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, MaxScale: 2, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.Invoke(context.Background(), "s", benchReq(fmt.Sprintf("m%d", i), 200))
		}(i)
	}
	seenOver := false
	for i := 0; i < 50; i++ {
		if p.Pods() > 2 {
			seenOver = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if seenOver {
		t.Fatal("pod count exceeded MaxScale")
	}
}

func TestResourceExhaustionStallsScaling(t *testing.T) {
	// Tiny cluster: room for exactly one pod.
	small := cluster.New(cluster.NewNode(cluster.NodeSpec{
		Name: "tiny", Cores: 2, MemBytes: 1 << 30, IdleWatts: 10, MaxWatts: 20,
	}))
	opts := fastOpts(small, sharedfs.NewMem())
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 2, MemRequestPerWorker: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "s", benchReq(fmt.Sprintf("x%d", i), 100)); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if p.ScaleStalls() == 0 {
		t.Fatal("expected scale stalls on a full cluster")
	}
	if p.Pods() > 1 {
		t.Fatalf("pods = %d, want <= 1 on a 2-core cluster", p.Pods())
	}
}

func TestHTTPIngress(t *testing.T) {
	drive := sharedfs.NewMem()
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), drive))
	if err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 2, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	url := p.URL()
	if url == "" {
		t.Fatal("no ingress URL")
	}

	hr, err := http.Get(url + "/healthz")
	if err != nil || hr.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", hr, err)
	}
	hr.Body.Close()

	body, _ := json.Marshal(benchReq("h1", 50))
	pr, err := http.Post(url+"/wfbench/wfbench", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var resp wfbench.Response
	json.NewDecoder(pr.Body).Decode(&resp)
	pr.Body.Close()
	if pr.StatusCode != 200 || !resp.OK {
		t.Fatalf("status=%d resp=%+v", pr.StatusCode, resp)
	}
	if !drive.Exists("h1_out") {
		t.Fatal("output not written")
	}

	// bad routes and bodies
	r2, _ := http.Post(url+"/nosuch/wfbench", "application/json", bytes.NewReader(body))
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unknown service status = %d", r2.StatusCode)
	}
	r2.Body.Close()
	r3, _ := http.Post(url+"/wfbench/wfbench", "application/json", bytes.NewReader([]byte("{")))
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", r3.StatusCode)
	}
	r3.Body.Close()
	r4, _ := http.Get(url + "/wfbench/wfbench")
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("GET status = %d", r4.StatusCode)
	}
	r4.Body.Close()
}

func TestFailedInvocationCountsFailure(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	req := benchReq("needy", 10)
	req.Inputs = []string{"never-appears.txt"}
	_, err := p.Invoke(context.Background(), "s", req)
	if err == nil {
		t.Fatal("missing input succeeded")
	}
	if p.Failures() != 1 {
		t.Fatalf("failures = %d", p.Failures())
	}
}

func TestApplyReplaceAndDelete(t *testing.T) {
	c := cluster.PaperTestbed()
	p := startPlatform(t, fastOpts(c, sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, MinScale: 2, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	if p.Pods() != 2 {
		t.Fatalf("pods = %d", p.Pods())
	}
	// replace with a different shape
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 4, MinScale: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, time.Second, func() bool { return p.Pods() == 1 }, "replacement did not converge")
	p.Delete("s")
	waitUntil(t, time.Second, func() bool { return p.Pods() == 0 }, "delete left pods")
	waitUntil(t, time.Second, func() bool { return c.Snapshot().ReservedCores == 0 }, "delete leaked reservations")
	if _, err := p.Invoke(context.Background(), "s", benchReq("f", 1)); err == nil {
		t.Fatal("deleted service still invocable")
	}
}

func TestApplyInvalidAndAfterStop(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "", Workers: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
	p.Stop()
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1}); err == nil {
		t.Fatal("Apply after Stop accepted")
	}
	// Stop is idempotent.
	p.Stop()
}

func TestPMBallastFreedWithPods(t *testing.T) {
	// With KeepMem, worker ballast persists across invocations but is
	// released when the pod scales down — the serverless PM advantage.
	c := cluster.PaperTestbed()
	opts := fastOpts(c, sharedfs.NewMem())
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 1, KeepMem: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "s", benchReq("f1", 20)); err != nil {
		t.Fatal(err)
	}
	// ballast + pod overhead resident while pod is warm
	if got := c.Snapshot().UsedMem; got < 4<<20 {
		t.Fatalf("expected resident ballast, UsedMem = %d", got)
	}
	waitUntil(t, 5*time.Second, func() bool { return p.Pods() == 0 }, "pod never reclaimed")
	waitUntil(t, time.Second, func() bool { return c.Snapshot().UsedMem == 0 }, "ballast leaked after scale-down")
}

func TestQueueFullTimesOut(t *testing.T) {
	small := cluster.New(cluster.NewNode(cluster.NodeSpec{Name: "t", Cores: 1, MemBytes: 1 << 30}))
	opts := fastOpts(small, sharedfs.NewMem())
	opts.QueueCapacity = 1
	p := startPlatform(t, opts)
	// Service whose pods can never be placed (needs 4 cores on a
	// 1-core node) — requests sit in the queue forever.
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 4}); err != nil {
		t.Fatal(err)
	}
	fill := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		close(fill)
		p.Invoke(ctx, "s", benchReq("a", 1)) // occupies the queue slot
	}()
	<-fill
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := p.Invoke(ctx, "s", benchReq("b", 1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestColdStartLatencyObserved(t *testing.T) {
	// With a large cold start, the first invocation must take at least
	// that long end to end.
	opts := fastOpts(cluster.PaperTestbed(), sharedfs.NewMem())
	opts.ColdStart = 25 // 50ms at scale 0.002
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := p.Invoke(context.Background(), "s", benchReq("f", 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("first invocation took %v, want >= cold start 50ms", elapsed)
	}
	// Warm path is much faster.
	start = time.Now()
	if _, err := p.Invoke(context.Background(), "s", benchReq("g", 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("warm invocation took %v", elapsed)
	}
}

func TestStatsEndpoint(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 2, MinScale: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "s", benchReq("f", 10)); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Requests != 1 || st.ColdStarts < 1 {
		t.Fatalf("stats = %+v", st)
	}
	ss, ok := st.Services["s"]
	if !ok || ss.Pods < 1 {
		t.Fatalf("service stats = %+v", st.Services)
	}

	// HTTP form
	resp, err := http.Get(p.URL() + "/stats")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("GET /stats: %v %v", resp.StatusCode, err)
	}
	defer resp.Body.Close()
	var got Stats
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Requests != 1 {
		t.Fatalf("http stats = %+v", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "m", Workers: 1, MinScale: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "m", benchReq("f", 10)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(p.URL() + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %v %v", resp.StatusCode, err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	out := string(body[:n])
	for _, want := range []string{
		"wfserverless_requests_total 1",
		"wfserverless_cold_starts_total",
		`wfserverless_service_pods{service="m"}`,
		"# TYPE wfserverless_pods gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestQueueFullIsOverloaded(t *testing.T) {
	small := cluster.New(cluster.NewNode(cluster.NodeSpec{Name: "t", Cores: 1, MemBytes: 1 << 30}))
	opts := fastOpts(small, sharedfs.NewMem())
	opts.QueueCapacity = 1
	p := startPlatform(t, opts)
	// Unplaceable service: the single queue slot fills and never drains.
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 4}); err != nil {
		t.Fatal(err)
	}
	fill := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		close(fill)
		p.Invoke(ctx, "s", benchReq("a", 1))
	}()
	<-fill
	waitUntil(t, time.Second, func() bool { return p.Stats().QueueDepth == 1 }, "queue never filled")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := p.Invoke(ctx, "s", benchReq("b", 1))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

func TestIngressMapsOverloadTo429(t *testing.T) {
	small := cluster.New(cluster.NewNode(cluster.NodeSpec{Name: "t", Cores: 1, MemBytes: 1 << 30}))
	opts := fastOpts(small, sharedfs.NewMem())
	opts.QueueCapacity = 1
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 4}); err != nil {
		t.Fatal(err)
	}
	fill := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		close(fill)
		p.Invoke(ctx, "s", benchReq("a", 1))
	}()
	<-fill
	waitUntil(t, time.Second, func() bool { return p.Stats().QueueDepth == 1 }, "queue never filled")

	body, _ := json.Marshal(benchReq("b", 1))
	req := httptest.NewRequest(http.MethodPost, "/s/wfbench", bytes.NewReader(body))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %q", rec.Code, rec.Body.String())
	}
	ra, err := strconv.ParseFloat(rec.Header().Get("Retry-After"), 64)
	if err != nil || ra <= 0 {
		t.Fatalf("Retry-After = %q, want positive seconds", rec.Header().Get("Retry-After"))
	}
}

func TestIngressMapsStoppedTo503(t *testing.T) {
	opts := fastOpts(cluster.PaperTestbed(), sharedfs.NewMem())
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	_, err := p.Invoke(context.Background(), "s", benchReq("a", 1))
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	body, _ := json.Marshal(benchReq("b", 1))
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/s/wfbench", bytes.NewReader(body)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("stopped platform sent a Retry-After hint")
	}
}

// TestSplitInvokePath pins the manual router against the old
// strings.Split behaviour, including the tolerated trailing slash.
func TestSplitInvokePath(t *testing.T) {
	cases := []struct {
		path    string
		service string
		ok      bool
	}{
		{"/blastall/wfbench", "blastall", true},
		{"/s/wfbench/", "s", true},
		{"/wfbench", "", false},
		{"//wfbench", "", false},
		{"/a/b/wfbench", "", false},
		{"/s/other", "", false},
		{"/stats", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		service, ok := splitInvokePath(c.path)
		if service != c.service || ok != c.ok {
			t.Errorf("splitInvokePath(%q) = %q,%v; want %q,%v", c.path, service, ok, c.service, c.ok)
		}
	}
}
