// Package serverless implements the serverless platform of the
// reproduction: a Knative-equivalent that accepts function invocations as
// HTTP requests at an ingress, routes them to pods of a named service,
// and manages the pod fleet with a concurrency-based autoscaler
// supporting scale-to-zero, cold starts, per-pod worker pools
// (containerConcurrency), and per-pod resource requests enforced against
// the cluster substrate.
//
// The mechanisms that drive the paper's results are all here:
//
//   - a burst of invocations queues at the ingress while the autoscaler
//     adds pods, each paying a cold-start latency — group-1 workflows get
//     slower on serverless;
//   - pods exist only while demand exists (stable-window scale-down, then
//     scale-to-zero), so the time-averaged CPU reservation and resident
//     memory are far below an always-on container fleet — the paper's
//     78%/74% CPU/memory reductions;
//   - when pod reservations exhaust the cluster, scale-up stalls and
//     requests wait — the paper's "memory and CPU limits being reached"
//     failure mode for large fine-grained workflows.
package serverless

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/metrics"
	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

// ServiceConfig is the Knative Service manifest equivalent.
type ServiceConfig struct {
	// Name routes requests: POST <ingress>/<Name>/wfbench.
	Name string
	// Workers is the per-pod worker pool size (gunicorn --workers, the
	// paper's 1w/10w/1000w knob) and the autoscaler's per-pod
	// concurrency target.
	Workers int
	// CPURequestPerWorker and MemRequestPerWorker size the pod's
	// resource reservation: a pod reserves Workers x per-worker amounts.
	CPURequestPerWorker float64
	MemRequestPerWorker int64
	// MinScale/MaxScale bound the pod count. MaxScale 0 means unbounded
	// (the cluster's capacity is the only limit).
	MinScale int
	MaxScale int
	// KeepMem is the paper's persistent-memory (PM) knob: workers keep
	// their WfBench ballast between invocations.
	KeepMem bool
}

func (c *ServiceConfig) validate() error {
	if c.Name == "" {
		return errors.New("serverless: service needs a name")
	}
	if strings.ContainsAny(c.Name, "/ ") {
		return fmt.Errorf("serverless: invalid service name %q", c.Name)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("serverless: service %s needs >= 1 worker", c.Name)
	}
	if c.MinScale < 0 || c.MaxScale < 0 || (c.MaxScale > 0 && c.MinScale > c.MaxScale) {
		return fmt.Errorf("serverless: service %s has invalid scale bounds [%d,%d]", c.Name, c.MinScale, c.MaxScale)
	}
	if c.CPURequestPerWorker < 0 || c.MemRequestPerWorker < 0 {
		return fmt.Errorf("serverless: service %s has negative resource requests", c.Name)
	}
	return nil
}

// Options configures the platform.
type Options struct {
	// Cluster provides nodes; required.
	Cluster *cluster.Cluster
	// Drive is the shared drive; required.
	Drive sharedfs.Drive
	// TimeScale converts nominal paper seconds to wall time for every
	// latency below and for WfBench runs. Zero defaults to 1.
	TimeScale float64
	// Engine runs the WfBench stress phase; nil means SimEngine.
	Engine wfbench.Engine
	// ColdStart is the nominal pod startup latency (paper seconds).
	// Zero means instant starts (the coarse-grained scenario).
	ColdStart float64
	// AutoscalePeriod is the nominal autoscaler tick (paper seconds);
	// zero defaults to 2s.
	AutoscalePeriod float64
	// StableWindow is how long (paper seconds) a pod must sit idle
	// beyond the desired count before it is reclaimed; zero defaults
	// to 30s.
	StableWindow float64
	// PodOverheadMem is resident memory per pod (runtime + queue
	// proxy); WorkerOverheadMem is resident memory per pre-forked
	// worker. Both persist for the pod's lifetime.
	PodOverheadMem    int64
	WorkerOverheadMem int64
	// PodOverheadCPU is the small constant busy-CPU of a live pod's
	// sidecars.
	PodOverheadCPU float64
	// InputWait is how long (paper seconds) a WfBench invocation polls
	// for its input files; zero defaults to 5s.
	InputWait float64
	// QueueCapacity bounds the per-service ingress queue; zero
	// defaults to 16384.
	QueueCapacity int
	// InstantScaleUp disables the KPA-style doubling ramp and jumps
	// straight to the desired pod count each tick — an ablation knob
	// for quantifying how much of the serverless slowdown the gradual
	// ramp contributes.
	InstantScaleUp bool
	// Placer selects nodes for pod reservations; nil means first fit.
	Placer cluster.Placer
	// Tracer records platform spans (queue wait, cold start, pod
	// execution) for invocations whose callers propagated a sampled
	// trace context; the WfBench layer inherits the same tracer for its
	// phase spans. Nil disables span emission.
	Tracer *obs.Tracer
}

func (o *Options) applyDefaults() error {
	if o.Cluster == nil || o.Drive == nil {
		return errors.New("serverless: Options need Cluster and Drive")
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.TimeScale < 0 {
		return fmt.Errorf("serverless: negative TimeScale")
	}
	if o.Engine == nil {
		o.Engine = wfbench.SimEngine{}
	}
	if o.AutoscalePeriod == 0 {
		o.AutoscalePeriod = 2
	}
	if o.StableWindow == 0 {
		o.StableWindow = 30
	}
	if o.InputWait == 0 {
		o.InputWait = 5
	}
	if o.QueueCapacity == 0 {
		o.QueueCapacity = 16384
	}
	return nil
}

func (o *Options) scaled(nominalSeconds float64) time.Duration {
	return time.Duration(nominalSeconds * o.TimeScale * float64(time.Second))
}

// invocation is one in-flight function request. parent is the trace
// context propagated by the caller (a Traceparent header at the
// ingress, or in-process via obs.ContextWithSpan); queue is the open
// queue-wait span. Invoke owns the queue span until the enqueue
// succeeds; after that the worker that dequeues the invocation
// finishes it, so the span is closed exactly once on every path.
type invocation struct {
	req    *wfbench.Request
	respCh chan invocationResult
	parent obs.SpanContext
	queue  *obs.Span
	// idx identifies a sub-invocation inside a batch: batch members
	// share one response channel (sized for the whole batch) and the
	// collector places results by idx. Single invocations use idx 0 on
	// a dedicated channel.
	idx int
	// prep, when set, carries the batch's shared input verification so
	// the worker skips the per-task input wait (ExecuteVerified).
	prep *wfbench.BatchPrep
}

type invocationResult struct {
	resp *wfbench.Response
	err  error
	idx  int
}

// Platform is the serverless platform. Create with New, then Start to
// listen on the loopback ingress, Apply services, and Stop when done.
type Platform struct {
	opts Options

	mu       sync.Mutex
	services map[string]*service
	server   *http.Server
	listener net.Listener
	url      string
	stopCh   chan struct{}
	stopped  bool
	asWG     sync.WaitGroup

	requests   atomic.Int64
	coldStarts atomic.Int64
	failures   atomic.Int64
	// scaleStalls counts autoscaler ticks where a needed pod could not
	// be placed for lack of cluster resources.
	scaleStalls atomic.Int64
	// latency tracks end-to-end invocation wall time (queue wait plus
	// execution), exposed as a histogram at GET /metrics.
	latency metrics.Histogram
}

// New returns an unstarted platform.
func New(opts Options) (*Platform, error) {
	if err := opts.applyDefaults(); err != nil {
		return nil, err
	}
	return &Platform{
		opts:     opts,
		services: make(map[string]*service),
		stopCh:   make(chan struct{}),
	}, nil
}

// Start binds the ingress to a loopback port and launches the autoscaler.
// It returns the ingress base URL.
func (p *Platform) Start() (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.listener != nil {
		return "", errors.New("serverless: already started")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("serverless: ingress listen: %w", err)
	}
	p.listener = ln
	p.url = "http://" + ln.Addr().String()
	p.server = &http.Server{Handler: p}
	go p.server.Serve(ln)

	p.asWG.Add(1)
	go p.autoscaleLoop()
	return p.url, nil
}

// URL returns the ingress base URL ("" before Start).
func (p *Platform) URL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.url
}

// Stop tears down all services, the autoscaler, and the ingress.
func (p *Platform) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	close(p.stopCh)
	server := p.server
	svcs := make([]*service, 0, len(p.services))
	for _, s := range p.services {
		svcs = append(svcs, s)
	}
	p.services = make(map[string]*service)
	p.mu.Unlock()

	p.asWG.Wait()
	for _, s := range svcs {
		s.shutdown()
	}
	if server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		server.Shutdown(ctx)
	}
}

// Apply creates or replaces a service, starting MinScale pods
// immediately (replacement tears down the old incarnation first).
func (p *Platform) Apply(cfg ServiceConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return errors.New("serverless: platform stopped")
	}
	old := p.services[cfg.Name]
	svc := newService(p, cfg)
	p.services[cfg.Name] = svc
	p.mu.Unlock()
	if old != nil {
		old.shutdown()
	}
	for i := 0; i < cfg.MinScale; i++ {
		if err := svc.addPod(); err != nil {
			return fmt.Errorf("serverless: service %s min-scale: %w", cfg.Name, err)
		}
	}
	return nil
}

// Delete removes a service and reclaims its pods.
func (p *Platform) Delete(name string) {
	p.mu.Lock()
	svc := p.services[name]
	delete(p.services, name)
	p.mu.Unlock()
	if svc != nil {
		svc.shutdown()
	}
}

func (p *Platform) serviceList() []*service {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*service, 0, len(p.services))
	names := make([]string, 0, len(p.services))
	for n := range p.services {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, p.services[n])
	}
	return out
}

// Pods returns the number of live pods across all services.
func (p *Platform) Pods() int {
	n := 0
	for _, s := range p.serviceList() {
		n += s.podCount()
	}
	return n
}

// QueueDepth returns the total queued (not yet executing) invocations.
func (p *Platform) QueueDepth() int {
	n := 0
	for _, s := range p.serviceList() {
		n += len(s.queue)
	}
	return n
}

// ColdStarts returns the cumulative pod cold starts.
func (p *Platform) ColdStarts() int64 { return p.coldStarts.Load() }

// Requests returns the cumulative invocation count.
func (p *Platform) Requests() int64 { return p.requests.Load() }

// Failures returns the cumulative failed invocations.
func (p *Platform) Failures() int64 { return p.failures.Load() }

// ScaleStalls returns autoscaler ticks that could not place a needed pod.
func (p *Platform) ScaleStalls() int64 { return p.scaleStalls.Load() }

// ErrOverloaded is returned when an invocation cannot be accepted
// because the service's queue is full — backpressure the caller should
// respond to by retrying later. The ingress maps it to 429.
var ErrOverloaded = errors.New("serverless: overloaded")

// ErrStopped is returned for invocations arriving after Close. The
// ingress maps it to 503.
var ErrStopped = errors.New("serverless: platform stopped")

// Invoke executes one function on the named service, bypassing HTTP.
// The ingress handler and in-process callers share this path.
func (p *Platform) Invoke(ctx context.Context, serviceName string, req *wfbench.Request) (*wfbench.Response, error) {
	p.mu.Lock()
	svc := p.services[serviceName]
	stopped := p.stopped
	p.mu.Unlock()
	if svc == nil {
		if stopped {
			// Stop tears the service map down, so report shutdown, not
			// a configuration mistake.
			return nil, fmt.Errorf("serverless: %s: %w", serviceName, ErrStopped)
		}
		return nil, fmt.Errorf("serverless: no such service %q", serviceName)
	}
	p.requests.Add(1)
	start := time.Now()
	inv := &invocation{req: req, respCh: make(chan invocationResult, 1), parent: obs.SpanFromContext(ctx)}
	inv.queue = p.opts.Tracer.StartChild(inv.parent, "queue", obs.LayerPlatform)
	svc.inflight.Add(1)
	defer svc.inflight.Add(-1)
	select {
	case svc.queue <- inv:
	case <-ctx.Done():
		inv.queue.SetAttr("error", "cancelled before dispatch")
		inv.queue.Finish()
		p.failures.Add(1)
		// Distinguish overload from a caller that simply gave up: only
		// a full queue is the platform's fault, and only that case
		// should read as 429-retry-later to the workflow manager.
		if len(svc.queue) >= cap(svc.queue) {
			return nil, fmt.Errorf("serverless: %s: queue full: %w: %w", serviceName, ErrOverloaded, ctx.Err())
		}
		return nil, fmt.Errorf("serverless: %s: %w", serviceName, ctx.Err())
	case <-p.stopCh:
		inv.queue.SetAttr("error", "platform stopped")
		inv.queue.Finish()
		p.failures.Add(1)
		return nil, fmt.Errorf("serverless: %s: %w", serviceName, ErrStopped)
	}
	select {
	case r := <-inv.respCh:
		p.latency.ObserveDuration(time.Since(start))
		if r.err != nil {
			p.failures.Add(1)
		}
		return r.resp, r.err
	case <-ctx.Done():
		p.failures.Add(1)
		return nil, ctx.Err()
	}
}

// InvokeBatch executes a framed batch of sub-requests on the named
// service. The batch's input-file union is waited for and content-
// hashed once (wfbench.PrepareInputs), then every valid sub-request is
// handed to the service queue in one pass — warm pods pull them
// concurrently, so the batch fans out across the fleet without a
// per-task HTTP round trip — and the results are collected on one
// shared channel. Each frame carries the exact status a single-task
// POST would have produced: 400 for invalid frames, 429 with a
// Retry-After of one autoscale period when the queue is full, 503 on
// shutdown/cancellation, 500 with the Response JSON for function
// errors, 200 otherwise.
func (p *Platform) InvokeBatch(ctx context.Context, serviceName string, items []wfbench.BatchItem) []wfbench.BatchResult {
	results := make([]wfbench.BatchResult, len(items))
	p.mu.Lock()
	svc := p.services[serviceName]
	stopped := p.stopped
	p.mu.Unlock()
	if svc == nil {
		msg := fmt.Sprintf("serverless: no such service %q", serviceName)
		if stopped {
			msg = fmt.Sprintf("serverless: %s: %v", serviceName, ErrStopped)
		}
		for i := range results {
			results[i] = wfbench.BatchResult{Status: http.StatusServiceUnavailable, Payload: []byte(msg)}
		}
		return results
	}

	// Decode and validate every frame first so the input union covers
	// exactly the sub-tasks that will run.
	reqs := make([]*wfbench.Request, len(items))
	var union []string
	for i, it := range items {
		req := new(wfbench.Request)
		if err := wfbench.UnmarshalRequest(it.Body, req); err != nil {
			results[i] = wfbench.BatchResult{Status: http.StatusBadRequest,
				Payload: []byte(fmt.Sprintf("bad request: %v", err))}
			continue
		}
		if err := req.Validate(); err != nil {
			results[i] = wfbench.BatchResult{Status: http.StatusBadRequest, Payload: []byte(err.Error())}
			continue
		}
		reqs[i] = req
		union = append(union, req.Inputs...)
	}
	prep := wfbench.PrepareInputs(ctx, p.opts.Drive, union, p.opts.scaled(p.opts.InputWait))

	overloadMillis := p.opts.scaled(p.opts.AutoscalePeriod).Milliseconds()
	respCh := make(chan invocationResult, len(items))
	enqueued := 0
	start := time.Now()
enqueue:
	for i, req := range reqs {
		if req == nil {
			continue
		}
		var parent obs.SpanContext
		if sc, ok := obs.ParseTraceparent(items[i].Traceparent); ok {
			parent = sc
		}
		p.requests.Add(1)
		inv := &invocation{req: req, respCh: respCh, parent: parent, idx: i, prep: prep}
		inv.queue = p.opts.Tracer.StartChild(parent, "queue", obs.LayerPlatform)
		select {
		case svc.queue <- inv:
			svc.inflight.Add(1)
			enqueued++
		case <-ctx.Done():
			inv.queue.SetAttr("error", "cancelled before dispatch")
			inv.queue.Finish()
			p.failures.Add(1)
			if len(svc.queue) >= cap(svc.queue) {
				results[i] = wfbench.BatchResult{Status: http.StatusTooManyRequests,
					RetryAfterMillis: overloadMillis,
					Payload:          []byte(fmt.Sprintf("serverless: %s: queue full: %v: %v", serviceName, ErrOverloaded, ctx.Err()))}
				continue
			}
			results[i] = wfbench.BatchResult{Status: http.StatusServiceUnavailable,
				Payload: []byte(fmt.Sprintf("serverless: %s: %v", serviceName, ctx.Err()))}
		case <-p.stopCh:
			inv.queue.SetAttr("error", "platform stopped")
			inv.queue.Finish()
			p.failures.Add(1)
			// Everything not yet enqueued shares the shutdown verdict.
			for j := i; j < len(reqs); j++ {
				if reqs[j] != nil && results[j].Status == 0 {
					results[j] = wfbench.BatchResult{Status: http.StatusServiceUnavailable,
						Payload: []byte(fmt.Sprintf("serverless: %s: %v", serviceName, ErrStopped))}
				}
			}
			break enqueue
		}
	}

	for done := 0; done < enqueued; done++ {
		select {
		case r := <-respCh:
			svc.inflight.Add(-1)
			p.latency.ObserveDuration(time.Since(start))
			results[r.idx] = subResultFrame(r)
			if r.err != nil {
				p.failures.Add(1)
			}
		case <-ctx.Done():
			// The caller gave up mid-batch. Mark the still-pending frames
			// cancelled and drain the stragglers in the background so the
			// inflight gauge (the autoscaler's demand signal) stays honest.
			remaining := enqueued - done
			for i, req := range reqs {
				if req != nil && results[i].Status == 0 {
					p.failures.Add(1)
					results[i] = wfbench.BatchResult{Status: http.StatusServiceUnavailable,
						Payload: []byte(fmt.Sprintf("serverless: %s: %v", serviceName, ctx.Err()))}
				}
			}
			go func() {
				for i := 0; i < remaining; i++ {
					<-respCh
					svc.inflight.Add(-1)
				}
			}()
			return results
		}
	}
	return results
}

// subResultFrame renders one collected sub-invocation as a response
// frame with single-task HTTP semantics.
func subResultFrame(r invocationResult) wfbench.BatchResult {
	status := http.StatusOK
	if r.err != nil {
		status = http.StatusInternalServerError
	}
	var payload []byte
	if r.resp != nil {
		var merr error
		payload, merr = wfbench.MarshalResponse(r.resp)
		if merr != nil {
			status = http.StatusInternalServerError
			payload = []byte(merr.Error())
		}
	} else if r.err != nil {
		payload = []byte(r.err.Error())
	}
	return wfbench.BatchResult{Status: status, Payload: payload}
}

// Stats is the operational snapshot served at GET /stats.
type Stats struct {
	Pods        int                     `json:"pods"`
	QueueDepth  int                     `json:"queueDepth"`
	ColdStarts  int64                   `json:"coldStarts"`
	Requests    int64                   `json:"requests"`
	Failures    int64                   `json:"failures"`
	ScaleStalls int64                   `json:"scaleStalls"`
	Services    map[string]ServiceStats `json:"services"`
}

// ServiceStats is the per-service portion of Stats.
type ServiceStats struct {
	Pods     int   `json:"pods"`
	Queued   int   `json:"queued"`
	Inflight int64 `json:"inflight"`
}

// Stats returns the platform's operational snapshot.
func (p *Platform) Stats() Stats {
	st := Stats{
		ColdStarts:  p.coldStarts.Load(),
		Requests:    p.requests.Load(),
		Failures:    p.failures.Load(),
		ScaleStalls: p.scaleStalls.Load(),
		Services:    make(map[string]ServiceStats),
	}
	for _, svc := range p.serviceList() {
		ss := ServiceStats{
			Pods:     svc.podCount(),
			Queued:   len(svc.queue),
			Inflight: svc.inflight.Load(),
		}
		st.Services[svc.cfg.Name] = ss
		st.Pods += ss.Pods
		st.QueueDepth += ss.Queued
	}
	return st
}

// ServeHTTP routes POST /<service>/wfbench, POST
// /<service>/invoke-batch, GET /stats, GET /healthz.
func (p *Platform) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	if r.URL.Path == "/stats" && r.Method == http.MethodGet {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.Stats())
		return
	}
	if r.URL.Path == "/metrics" && r.Method == http.MethodGet {
		obs.ServeMetrics(w, r, p.WriteMetrics)
		return
	}
	if service, ok := splitBatchPath(r.URL.Path); ok && r.Method == http.MethodPost {
		body, err := wfbench.ReadBatchBody(r)
		var items []wfbench.BatchItem
		if err == nil {
			items, err = wfbench.DecodeBatchRequestBytes(body)
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
			return
		}
		wfbench.WriteBatchResponse(w, p.InvokeBatch(r.Context(), service, items))
		return
	}
	// Manual /<service>/wfbench routing: the invoke path handles one
	// request per workflow task, so it avoids strings.Split's slice
	// allocation per hit.
	service, ok := splitInvokePath(r.URL.Path)
	if !ok || r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	// Drain the body into a pooled buffer and unmarshal in place — no
	// per-request json.Decoder, and the read buffer is recycled across
	// invocations.
	buf := invokeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	var req wfbench.Request
	_, err := buf.ReadFrom(r.Body)
	if err == nil {
		err = json.Unmarshal(buf.Bytes(), &req)
	}
	invokeBufs.Put(buf)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A caller that sampled its invoke span propagates the trace here;
	// requests without (or with malformed) Traceparent headers pay only
	// this header probe.
	ctx := r.Context()
	if tp := r.Header.Get("Traceparent"); tp != "" {
		if sc, ok := obs.ParseTraceparent(tp); ok {
			ctx = obs.ContextWithSpan(ctx, sc)
		}
	}
	resp, err := p.Invoke(ctx, service, &req)
	status := http.StatusOK
	if err != nil {
		if resp == nil {
			// Platform-level failures carry retry semantics: overload
			// is 429 with a Retry-After hint of one autoscale period
			// (the soonest capacity can change), shutdown and anything
			// else without a response is 503.
			code := http.StatusServiceUnavailable
			if errors.Is(err, ErrOverloaded) {
				code = http.StatusTooManyRequests
				w.Header().Set("Retry-After",
					strconv.FormatFloat(p.opts.scaled(p.opts.AutoscalePeriod).Seconds(), 'f', -1, 64))
			}
			http.Error(w, err.Error(), code)
			return
		}
		status = http.StatusInternalServerError
	}
	out := invokeBufs.Get().(*bytes.Buffer)
	out.Reset()
	if err := json.NewEncoder(out).Encode(resp); err != nil {
		invokeBufs.Put(out)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(out.Len()))
	w.WriteHeader(status)
	w.Write(out.Bytes())
	invokeBufs.Put(out)
}

// invokeBufs recycles request-read and response-write buffers across
// ServeHTTP invocations.
var invokeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// splitInvokePath matches "/<service>/wfbench" (tolerating a trailing
// slash, as the old strings.Trim routing did) and returns the service
// segment, allocation-free.
func splitInvokePath(path string) (string, bool) {
	const suffix = "/wfbench"
	path = strings.TrimSuffix(path, "/")
	if len(path) <= len(suffix)+1 || path[0] != '/' || !strings.HasSuffix(path, suffix) {
		return "", false
	}
	service := path[1 : len(path)-len(suffix)]
	if service == "" || strings.ContainsRune(service, '/') {
		return "", false
	}
	return service, true
}

// splitBatchPath matches "/<service>/invoke-batch" and returns the
// service segment, allocation-free like splitInvokePath.
func splitBatchPath(path string) (string, bool) {
	const suffix = "/invoke-batch"
	path = strings.TrimSuffix(path, "/")
	if len(path) <= len(suffix)+1 || path[0] != '/' || !strings.HasSuffix(path, suffix) {
		return "", false
	}
	service := path[1 : len(path)-len(suffix)]
	if service == "" || strings.ContainsRune(service, '/') {
		return "", false
	}
	return service, true
}

// autoscaleLoop evaluates every service each tick: the desired pod count
// is ceil(inflight / workers) clamped to the scale bounds (the KPA's
// concurrency-per-pod rule), scaling up immediately and scaling down
// pods that sat idle for a stable window.
func (p *Platform) autoscaleLoop() {
	defer p.asWG.Done()
	ticker := time.NewTicker(p.opts.scaled(p.opts.AutoscalePeriod))
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-ticker.C:
			for _, svc := range p.serviceList() {
				p.autoscale(svc)
			}
		}
	}
}

func (p *Platform) autoscale(svc *service) {
	inflight := int(svc.inflight.Load())
	desired := (inflight + svc.cfg.Workers - 1) / svc.cfg.Workers
	if desired < svc.cfg.MinScale {
		desired = svc.cfg.MinScale
	}
	if svc.cfg.MaxScale > 0 && desired > svc.cfg.MaxScale {
		desired = svc.cfg.MaxScale
	}
	cur := svc.podCount()
	if cur < desired {
		// Ramp up by at most doubling per tick (one pod from zero),
		// the KPA-style gradual scale-up. This is why fewer, larger
		// pods (10w) reach a burst's demand in fewer ticks than many
		// 1-worker pods — the paper's Figure 4 observation.
		allowed := cur
		if allowed < 1 {
			allowed = 1
		}
		target := cur + allowed
		if target > desired || p.opts.InstantScaleUp {
			target = desired
		}
		for cur < target {
			if err := svc.addPod(); err != nil {
				p.scaleStalls.Add(1)
				break // resource pressure: retry next tick
			}
			cur++
		}
	}
	if cur > desired {
		svc.reapIdle(cur-desired, p.opts.scaled(p.opts.StableWindow))
	}
}

// service is the runtime state of one applied ServiceConfig.
type service struct {
	p        *Platform
	cfg      ServiceConfig
	queue    chan *invocation
	inflight atomic.Int64

	mu      sync.Mutex
	pods    []*pod
	nextPod int
	dead    bool
}

func newService(p *Platform, cfg ServiceConfig) *service {
	return &service{
		p:     p,
		cfg:   cfg,
		queue: make(chan *invocation, p.opts.QueueCapacity),
	}
}

func (s *service) podCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pods)
}

// addPod reserves resources, then brings a pod up after the cold-start
// latency.
func (s *service) addPod() error {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return errors.New("serverless: service deleted")
	}
	id := s.nextPod
	s.nextPod++
	s.mu.Unlock()

	cores := float64(s.cfg.Workers) * s.cfg.CPURequestPerWorker
	mem := int64(s.cfg.Workers)*s.cfg.MemRequestPerWorker + s.p.opts.PodOverheadMem
	res, err := s.p.opts.Cluster.PlaceWith(s.p.opts.Placer, cores, mem)
	if err != nil {
		return err
	}
	pd, err := newPod(s, id, res)
	if err != nil {
		res.Release()
		return err
	}
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		pd.stop()
		return errors.New("serverless: service deleted")
	}
	s.pods = append(s.pods, pd)
	s.mu.Unlock()
	s.p.coldStarts.Add(1)
	pd.start(s.p.opts.scaled(s.p.opts.ColdStart))
	return nil
}

// reapIdle terminates up to n pods that have been idle longer than the
// stable window.
func (s *service) reapIdle(n int, window time.Duration) {
	now := time.Now()
	var victims []*pod
	s.mu.Lock()
	keep := s.pods[:0]
	for _, pd := range s.pods {
		if len(victims) < n && pd.idleSince(now) > window {
			victims = append(victims, pd)
		} else {
			keep = append(keep, pd)
		}
	}
	s.pods = keep
	s.mu.Unlock()
	for _, pd := range victims {
		pd.stop()
	}
}

// shutdown stops all pods and marks the service dead.
func (s *service) shutdown() {
	s.mu.Lock()
	s.dead = true
	pods := s.pods
	s.pods = nil
	s.mu.Unlock()
	for _, pd := range pods {
		pd.stop()
	}
}

// pod is one scheduled replica: a resource reservation plus a pool of
// worker goroutines pulling invocations from the service queue.
type pod struct {
	svc  *service
	name string
	res  *cluster.Reservation

	bench   *wfbench.Bench
	workers []*wfbench.Worker

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// lifeMu serializes start against stop: addPod publishes the pod
	// before calling start, so a concurrent shutdown/reap may stop the
	// pod first — start must then be a no-op rather than racing its
	// wg.Add against stop's wg.Wait and registering overheads on a
	// released reservation.
	lifeMu  sync.Mutex
	stopped bool

	active     atomic.Int64
	lastActive atomic.Int64 // UnixNano

	// createdAt/readyAt bound the cold start: scheduling at newPod,
	// workers live after the ColdStart sleep. readyAt is written before
	// the worker goroutines launch, so worker loops read it safely.
	// served flips on the first invocation a pod handles — that request
	// paid the cold start and reports ColdStart in its response.
	createdAt time.Time
	readyAt   time.Time
	served    atomic.Bool

	releaseOverheadMem func()
	releaseOverheadCPU func()
}

func newPod(s *service, id int, res *cluster.Reservation) (*pod, error) {
	opts := s.p.opts
	bench, err := wfbench.New(wfbench.Config{
		Drive:     opts.Drive,
		Engine:    opts.Engine,
		Usage:     res.Node(),
		TimeScale: opts.TimeScale,
		InputWait: opts.scaled(opts.InputWait),
		KeepMem:   s.cfg.KeepMem,
		Tracer:    opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	pd := &pod{
		svc:       s,
		name:      fmt.Sprintf("%s-pod-%05d", s.cfg.Name, id),
		res:       res,
		bench:     bench,
		stopCh:    make(chan struct{}),
		createdAt: time.Now(),
	}
	pd.lastActive.Store(time.Now().UnixNano())
	for i := 0; i < s.cfg.Workers; i++ {
		pd.workers = append(pd.workers, bench.NewWorker())
	}
	return pd, nil
}

// start sleeps through the cold start, registers the pod's resident
// overheads, and launches the worker loops.
func (pd *pod) start(coldStart time.Duration) {
	pd.lifeMu.Lock()
	if pd.stopped {
		pd.lifeMu.Unlock()
		return
	}
	pd.wg.Add(1)
	pd.lifeMu.Unlock()
	go func() {
		defer pd.wg.Done()
		if coldStart > 0 {
			t := time.NewTimer(coldStart)
			defer t.Stop()
			select {
			case <-pd.stopCh:
				return
			case <-t.C:
			}
		}
		pd.readyAt = time.Now()
		node := pd.res.Node()
		opts := pd.svc.p.opts
		mem := opts.PodOverheadMem + int64(len(pd.workers))*opts.WorkerOverheadMem
		if mem > 0 {
			pd.releaseOverheadMem = node.AddMem(mem)
		}
		if opts.PodOverheadCPU > 0 {
			pd.releaseOverheadCPU = node.AddBusy(opts.PodOverheadCPU)
		}
		for _, w := range pd.workers {
			pd.wg.Add(1)
			go pd.workerLoop(w)
		}
	}()
}

func (pd *pod) workerLoop(w *wfbench.Worker) {
	defer pd.wg.Done()
	for {
		select {
		case <-pd.stopCh:
			return
		case inv := <-pd.svc.queue:
			pd.active.Add(1)
			inv.queue.Finish()
			tracer := pd.svc.p.opts.Tracer
			first := !pd.served.Swap(true)
			if first {
				// The first request a pod serves is the one that waited
				// out its cold start; attribute the boot window to it.
				if cs := tracer.StartChild(inv.parent, "coldstart", obs.LayerPlatform); cs != nil {
					cs.SetStart(pd.createdAt)
					cs.SetAttr("pod", pd.name)
					cs.FinishAt(pd.readyAt)
				}
			}
			exec := tracer.StartChild(inv.parent, "execute", obs.LayerPlatform)
			exec.SetAttr("pod", pd.name)
			// Workers honour no per-request deadline (gunicorn --timeout
			// 0), so the trace context rides a fresh background context.
			ctx := context.Background()
			if exec != nil {
				ctx = obs.ContextWithSpan(ctx, exec.Context())
			}
			var resp *wfbench.Response
			var err error
			if inv.prep != nil {
				resp, err = w.ExecuteVerified(ctx, inv.req, inv.prep)
			} else {
				resp, err = w.Execute(ctx, inv.req)
			}
			if resp != nil {
				resp.Pod = pd.name
				resp.ColdStart = first
			}
			if err != nil {
				exec.SetAttr("error", err.Error())
			}
			exec.Finish()
			pd.active.Add(-1)
			pd.lastActive.Store(time.Now().UnixNano())
			inv.respCh <- invocationResult{resp: resp, err: err, idx: inv.idx}
		}
	}
}

// idleSince returns how long the pod has been idle, or 0 if it has
// active work.
func (pd *pod) idleSince(now time.Time) time.Duration {
	if pd.active.Load() > 0 {
		return 0
	}
	return now.Sub(time.Unix(0, pd.lastActive.Load()))
}

// stop terminates the pod: workers drain, overheads and ballast are
// released, and the reservation returns to the node. Runs asynchronously
// with respect to in-flight work; safe to call multiple times.
func (pd *pod) stop() {
	pd.stopOnce.Do(func() {
		pd.lifeMu.Lock()
		pd.stopped = true
		close(pd.stopCh)
		pd.lifeMu.Unlock()
		go func() {
			pd.wg.Wait()
			for _, w := range pd.workers {
				w.Close()
			}
			if pd.releaseOverheadMem != nil {
				pd.releaseOverheadMem()
			}
			if pd.releaseOverheadCPU != nil {
				pd.releaseOverheadCPU()
			}
			pd.res.Release()
		}()
	})
}
