package serverless

import (
	"fmt"
	"io"
	"sort"
)

// WriteMetrics emits the platform's operational counters in Prometheus
// text exposition format at GET /metrics — the monitoring surface a
// production deployment of the platform would scrape alongside the
// PCP-style resource sampler. Monotonic series (the *_total family)
// are typed counter so rate() works on them; point-in-time series are
// gauges.
func (p *Platform) WriteMetrics(w io.Writer) error {
	st := p.Stats()
	write := func(name, typ, help string, v float64) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
		return err
	}
	if err := write("wfserverless_pods", "gauge", "live pods across all services", float64(st.Pods)); err != nil {
		return err
	}
	if err := write("wfserverless_queue_depth", "gauge", "queued invocations", float64(st.QueueDepth)); err != nil {
		return err
	}
	if err := write("wfserverless_cold_starts_total", "counter", "cumulative pod cold starts", float64(st.ColdStarts)); err != nil {
		return err
	}
	if err := write("wfserverless_requests_total", "counter", "cumulative invocations", float64(st.Requests)); err != nil {
		return err
	}
	if err := write("wfserverless_failures_total", "counter", "cumulative failed invocations", float64(st.Failures)); err != nil {
		return err
	}
	if err := write("wfserverless_scale_stalls_total", "counter", "autoscaler ticks blocked on resources", float64(st.ScaleStalls)); err != nil {
		return err
	}
	names := make([]string, 0, len(st.Services))
	for n := range st.Services {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP wfserverless_service_pods live pods per service\n# TYPE wfserverless_service_pods gauge\n"); err != nil {
			return err
		}
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "wfserverless_service_pods{service=%q} %d\n", n, st.Services[n].Pods); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP wfserverless_service_inflight in-flight invocations per service\n# TYPE wfserverless_service_inflight gauge\n"); err != nil {
			return err
		}
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "wfserverless_service_inflight{service=%q} %d\n", n, st.Services[n].Inflight); err != nil {
				return err
			}
		}
	}
	return p.latency.WriteProm(w, "wfserverless_invocation_seconds",
		"end-to-end invocation latency: queue wait plus execution")
}
