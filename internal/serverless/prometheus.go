package serverless

import (
	"fmt"
	"io"
	"sort"
)

// WriteMetrics emits the platform's operational counters in Prometheus
// text exposition format at GET /metrics — the monitoring surface a
// production deployment of the platform would scrape alongside the
// PCP-style resource sampler.
func (p *Platform) WriteMetrics(w io.Writer) error {
	st := p.Stats()
	write := func(name, help string, v float64) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
		return err
	}
	if err := write("wfserverless_pods", "live pods across all services", float64(st.Pods)); err != nil {
		return err
	}
	if err := write("wfserverless_queue_depth", "queued invocations", float64(st.QueueDepth)); err != nil {
		return err
	}
	if err := write("wfserverless_cold_starts_total", "cumulative pod cold starts", float64(st.ColdStarts)); err != nil {
		return err
	}
	if err := write("wfserverless_requests_total", "cumulative invocations", float64(st.Requests)); err != nil {
		return err
	}
	if err := write("wfserverless_failures_total", "cumulative failed invocations", float64(st.Failures)); err != nil {
		return err
	}
	if err := write("wfserverless_scale_stalls_total", "autoscaler ticks blocked on resources", float64(st.ScaleStalls)); err != nil {
		return err
	}
	names := make([]string, 0, len(st.Services))
	for n := range st.Services {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ss := st.Services[n]
		if _, err := fmt.Fprintf(w, "wfserverless_service_pods{service=%q} %d\n", n, ss.Pods); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "wfserverless_service_inflight{service=%q} %d\n", n, ss.Inflight); err != nil {
			return err
		}
	}
	return nil
}
