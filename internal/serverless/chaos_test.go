package serverless

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfserverless/internal/cluster"
	"wfserverless/internal/sharedfs"
)

// TestDeleteServiceMidBurst injects a control-plane failure: the service
// is deleted while a burst is in flight. In-flight work may finish or
// fail, but the platform must not deadlock, leak reservations, or panic,
// and post-delete invocations must be rejected.
func TestDeleteServiceMidBurst(t *testing.T) {
	c := cluster.PaperTestbed()
	opts := fastOpts(c, sharedfs.NewMem())
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 2, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var completed, failed atomic.Int64
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if _, err := p.Invoke(ctx, "s", benchReq(fmt.Sprintf("c%d", i), 300)); err != nil {
				failed.Add(1)
			} else {
				completed.Add(1)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	p.Delete("s")
	wg.Wait()
	if completed.Load()+failed.Load() != 20 {
		t.Fatalf("lost invocations: completed=%d failed=%d", completed.Load(), failed.Load())
	}
	// All resources eventually returned.
	waitUntil(t, 2*time.Second, func() bool {
		u := c.Snapshot()
		return u.ReservedCores == 0 && u.UsedMem == 0
	}, "delete leaked resources")
	// New invocations are rejected.
	if _, err := p.Invoke(context.Background(), "s", benchReq("late", 1)); err == nil {
		t.Fatal("deleted service accepted work")
	}
}

// TestStopWithInflightWork stops the whole platform under load.
func TestStopWithInflightWork(t *testing.T) {
	c := cluster.PaperTestbed()
	p := startPlatform(t, fastOpts(c, sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			p.Invoke(ctx, "s", benchReq(fmt.Sprintf("x%d", i), 500))
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	p.Stop()
	wg.Wait() // must not hang
	waitUntil(t, 2*time.Second, func() bool {
		return c.Snapshot().ReservedCores == 0
	}, "stop leaked reservations")
}

// TestScaleDownDoesNotDropQueuedWork reaps pods aggressively while work
// keeps arriving; every request must still complete.
func TestScaleDownDoesNotDropQueuedWork(t *testing.T) {
	c := cluster.PaperTestbed()
	opts := fastOpts(c, sharedfs.NewMem())
	opts.StableWindow = 1 // reap after 2ms idle
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "s", Workers: 1, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(r, i int) {
				defer wg.Done()
				if _, err := p.Invoke(context.Background(), "s", benchReq(fmt.Sprintf("r%d_%d", r, i), 50)); err != nil {
					t.Errorf("round %d invoke %d: %v", r, i, err)
				}
			}(round, i)
		}
		wg.Wait()
		// idle long enough for the reaper to bite between rounds
		time.Sleep(10 * time.Millisecond)
	}
	if p.Failures() != 0 {
		t.Fatalf("failures = %d", p.Failures())
	}
}
