package serverless

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wfserverless/internal/cluster"
	"wfserverless/internal/obs"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

// TestMetricsSeriesTypes is the regression test for the exposition
// format: every monotonic wfserverless_*_total series must be typed
// counter (they were once declared gauge, which breaks rate()), live
// series stay gauges, and the invocation latency histogram is complete.
func TestMetricsSeriesTypes(t *testing.T) {
	c := cluster.PaperTestbed()
	p := startPlatform(t, fastOpts(c, sharedfs.NewMem()))
	if err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "wfbench", benchReq("f1", 10)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(p.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	types := map[string]string{}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
			types[f[2]] = f[3]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for name, typ := range types {
		if strings.HasSuffix(name, "_total") && typ != "counter" {
			t.Errorf("%s declared %q, monotonic series must be counters", name, typ)
		}
	}
	for _, want := range []struct{ name, typ string }{
		{"wfserverless_requests_total", "counter"},
		{"wfserverless_cold_starts_total", "counter"},
		{"wfserverless_failures_total", "counter"},
		{"wfserverless_scale_stalls_total", "counter"},
		{"wfserverless_pods", "gauge"},
		{"wfserverless_queue_depth", "gauge"},
		{"wfserverless_invocation_seconds", "histogram"},
	} {
		if got := types[want.name]; got != want.typ {
			t.Errorf("%s type = %q, want %q", want.name, got, want.typ)
		}
	}

	joined := strings.Join(lines, "\n")
	for _, frag := range []string{
		`wfserverless_invocation_seconds_bucket{le="+Inf"} `,
		"wfserverless_invocation_seconds_sum ",
		"wfserverless_invocation_seconds_count 1",
	} {
		if !strings.Contains(joined, frag) {
			t.Errorf("exposition missing %q", frag)
		}
	}
}

// TestInvocationSpans drives a sampled invocation through the platform
// twice — once through the in-process Invoke path and once through the
// HTTP ingress with a Traceparent header — and checks the platform
// emits queue/coldstart/execute spans and the WfBench layer its phase
// leaves, all correctly parented onto the caller's trace.
func TestInvocationSpans(t *testing.T) {
	tr := obs.NewTracer(obs.Options{SampleRatio: 1})
	c := cluster.PaperTestbed()
	opts := fastOpts(c, sharedfs.NewMem())
	opts.Tracer = tr
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 2}); err != nil {
		t.Fatal(err)
	}

	root := tr.StartRoot("invoke", obs.LayerWFM)
	rootCtx := root.Context()

	ctx := obs.ContextWithSpan(context.Background(), rootCtx)
	first, err := p.Invoke(ctx, "wfbench", benchReq("f1", 10))
	if err != nil {
		t.Fatal(err)
	}
	if !first.ColdStart {
		t.Fatal("first invocation on a fresh pod did not report ColdStart")
	}

	body, _ := json.Marshal(benchReq("f2", 10))
	req, _ := http.NewRequest(http.MethodPost, p.URL()+"/wfbench/wfbench", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", rootCtx.Traceparent())
	hres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var second wfbench.Response
	if err := json.NewDecoder(hres.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if !second.OK {
		t.Fatalf("HTTP invocation failed: %+v", second)
	}
	if second.ColdStart {
		t.Fatal("second invocation on a warm pod reported ColdStart")
	}

	root.Finish()
	spans := tr.Take()
	counts := map[string]int{}
	execIDs := map[obs.SpanID]bool{}
	for _, s := range spans {
		counts[s.Name]++
		if s.Trace != rootCtx.TraceID {
			t.Fatalf("span %s has trace %s, want %s", s.Name, s.Trace, rootCtx.TraceID)
		}
		switch s.Name {
		case "queue", "coldstart", "execute":
			if s.Layer != obs.LayerPlatform {
				t.Fatalf("%s layer = %q", s.Name, s.Layer)
			}
			if s.Parent != rootCtx.SpanID {
				t.Fatalf("%s not parented to the caller's span", s.Name)
			}
			if s.Name == "execute" {
				execIDs[s.ID] = true
			}
		case "memory", "cpu", "outputs":
			if s.Layer != obs.LayerWfbench {
				t.Fatalf("%s layer = %q", s.Name, s.Layer)
			}
		}
	}
	for name, want := range map[string]int{
		"queue": 2, "execute": 2, "coldstart": 1,
		"memory": 2, "cpu": 2, "outputs": 2,
	} {
		if counts[name] != want {
			t.Fatalf("span %q count = %d, want %d (all: %v)", name, counts[name], want, counts)
		}
	}
	for _, s := range spans {
		if s.Layer == obs.LayerWfbench && !execIDs[s.Parent] {
			t.Fatalf("wfbench span %s not parented to an execute span", s.Name)
		}
	}
	for _, s := range spans {
		if s.Name == "coldstart" && !s.End.After(s.Start) {
			t.Fatal("coldstart span has no duration")
		}
	}
}

// TestUntracedInvocationEmitsNothing pins the off path: with no tracer
// (or no propagated context) an invocation must not record spans, and
// ColdStart reporting still works.
func TestUntracedInvocationEmitsNothing(t *testing.T) {
	tr := obs.NewTracer(obs.Options{SampleRatio: 1})
	c := cluster.PaperTestbed()
	opts := fastOpts(c, sharedfs.NewMem())
	opts.Tracer = tr
	p := startPlatform(t, opts)
	if err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := p.Invoke(context.Background(), "wfbench", benchReq("f1", 10))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ColdStart {
		t.Fatal("ColdStart not reported without tracing")
	}
	if got := tr.Take(); len(got) != 0 {
		t.Fatalf("untraced invocation recorded %d spans", len(got))
	}
}
