package serverless

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"wfserverless/internal/cluster"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/wfbench"
)

func frame(t *testing.T, r *wfbench.Request) wfbench.BatchItem {
	t.Helper()
	body, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return wfbench.BatchItem{Body: body}
}

// TestInvokeBatchMixedFrames pins the platform batch surface: valid
// sub-tasks fan out across the pod fleet and answer 200, an
// unparseable frame answers 400, a function failure answers 500 with
// its Response JSON — no frame's fate leaks into another's.
func TestInvokeBatchMixedFrames(t *testing.T) {
	drive := sharedfs.NewMem()
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), drive))
	if err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 2, CPURequestPerWorker: 1, MemRequestPerWorker: 64 << 20}); err != nil {
		t.Fatal(err)
	}
	doomed := benchReq("doomed", 10)
	doomed.Inputs = []string{"never-appears.txt"}
	items := []wfbench.BatchItem{
		frame(t, benchReq("b1", 10)),
		{Body: []byte("{nope")},
		frame(t, benchReq("b2", 10)),
		frame(t, doomed),
	}
	results := p.InvokeBatch(context.Background(), "wfbench", items)
	if len(results) != 4 {
		t.Fatalf("%d frames, want 4", len(results))
	}
	for i, want := range []int{200, 400, 200, 500} {
		if results[i].Status != want {
			t.Fatalf("frame %d status = %d, want %d (payload %q)", i, results[i].Status, want, results[i].Payload)
		}
	}
	for _, i := range []int{0, 2} {
		var r wfbench.Response
		if err := json.Unmarshal(results[i].Payload, &r); err != nil || !r.OK {
			t.Fatalf("frame %d payload = %q (%v)", i, results[i].Payload, err)
		}
	}
	var failed wfbench.Response
	if err := json.Unmarshal(results[3].Payload, &failed); err != nil || failed.OK {
		t.Fatalf("failed frame payload = %q (%v)", results[3].Payload, err)
	}
	if !drive.Exists("b1_out") || !drive.Exists("b2_out") {
		t.Fatal("batch outputs not published to the drive")
	}
	// Requests counts sub-tasks, not POSTs: three frames were valid.
	if p.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", p.Requests())
	}
	if p.Failures() != 1 {
		t.Fatalf("failures = %d, want 1", p.Failures())
	}
}

// TestInvokeBatchUnknownService answers every frame 503.
func TestInvokeBatchUnknownService(t *testing.T) {
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), sharedfs.NewMem()))
	results := p.InvokeBatch(context.Background(), "ghost",
		[]wfbench.BatchItem{frame(t, benchReq("x", 1)), frame(t, benchReq("y", 1))})
	for i, res := range results {
		if res.Status != http.StatusServiceUnavailable || !strings.Contains(string(res.Payload), "ghost") {
			t.Fatalf("frame %d = %+v, want 503 naming the service", i, res)
		}
	}
}

// TestIngressBatchRoute drives POST /<service>/invoke-batch through the
// HTTP ingress — the exact surface the manager's batchURL points at
// once the translator has rewritten API URLs.
func TestIngressBatchRoute(t *testing.T) {
	drive := sharedfs.NewMem()
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), drive))
	if err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 2, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	items := []wfbench.BatchItem{frame(t, benchReq("i1", 10)), frame(t, benchReq("i2", 10))}
	resp, err := http.Post(p.URL()+"/wfbench/invoke-batch", wfbench.BatchContentType,
		bytes.NewReader(wfbench.EncodeBatchRequest(items)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingress batch status = %d", resp.StatusCode)
	}
	results, err := wfbench.DecodeBatchResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Status != http.StatusOK {
			t.Fatalf("frame %d status = %d (%q)", i, res.Status, res.Payload)
		}
	}
	if !drive.Exists("i1_out") || !drive.Exists("i2_out") {
		t.Fatal("ingress batch outputs missing")
	}

	// A corrupt body is a 400 before any sub-task runs.
	bad, err := http.Post(p.URL()+"/wfbench/invoke-batch", wfbench.BatchContentType,
		bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt batch status = %d, want 400", bad.StatusCode)
	}
}

// TestInvokeBatchLargeFanout pushes a batch wider than the worker pool
// through one call: every frame completes, exercising the shared
// response channel and queue backpressure.
func TestInvokeBatchLargeFanout(t *testing.T) {
	drive := sharedfs.NewMem()
	p := startPlatform(t, fastOpts(cluster.PaperTestbed(), drive))
	if err := p.Apply(ServiceConfig{Name: "wfbench", Workers: 2, MaxScale: 4, CPURequestPerWorker: 1}); err != nil {
		t.Fatal(err)
	}
	const n = 32
	items := make([]wfbench.BatchItem, n)
	for i := range items {
		items[i] = frame(t, benchReq(fmt.Sprintf("wide%02d", i), 5))
	}
	results := p.InvokeBatch(context.Background(), "wfbench", items)
	for i, res := range results {
		if res.Status != http.StatusOK {
			t.Fatalf("frame %d status = %d (%q)", i, res.Status, res.Payload)
		}
	}
	for i := 0; i < n; i++ {
		if !drive.Exists(fmt.Sprintf("wide%02d_out", i)) {
			t.Fatalf("wide%02d output missing", i)
		}
	}
}

func TestSplitBatchPath(t *testing.T) {
	for _, tc := range []struct {
		in      string
		service string
		ok      bool
	}{
		{"/wfbench/invoke-batch", "wfbench", true},
		{"/svc/invoke-batch/", "svc", true},
		{"/invoke-batch", "", false},
		{"//invoke-batch", "", false},
		{"/a/b/invoke-batch", "", false},
		{"/wfbench/wfbench", "", false},
	} {
		service, ok := splitBatchPath(tc.in)
		if service != tc.service || ok != tc.ok {
			t.Errorf("splitBatchPath(%q) = %q,%v want %q,%v", tc.in, service, ok, tc.service, tc.ok)
		}
	}
}
