// Package wfinstances reimplements the WfInstances component of
// WfCommons: a repository of workflow execution instances collected from
// real runs, grouped by application domain, from which WfChef derives
// recipes. The paper's Figure 2 shows the pipeline
// WfInstances -> WfChef -> WfGen -> WfBench; this package provides the
// first stage — storing, loading, filtering, and summarizing instances —
// and the WfChef-style analysis that matches an instance to its closest
// structural recipe.
package wfinstances

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wfserverless/internal/recipes"
	"wfserverless/internal/wfformat"
)

// Domain labels mirror the WfInstances GitHub classification.
const (
	DomainBioinformatics = "bioinformatics"
	DomainAgroecosystems = "agroecosystems"
	DomainSeismology     = "seismology"
	DomainAstronomy      = "astronomy"
	DomainOther          = "other"
)

// domainFor maps recipe names to their scientific domain.
var domainFor = map[string]string{
	"blast":       DomainBioinformatics,
	"bwa":         DomainBioinformatics,
	"epigenomics": DomainBioinformatics,
	"genomes":     DomainBioinformatics,
	"srasearch":   DomainBioinformatics,
	"cycles":      DomainAgroecosystems,
	"seismology":  DomainSeismology,
}

// Instance is one collected workflow execution.
type Instance struct {
	// Name identifies the instance (e.g. "blast-chameleon-250-1").
	Name string `json:"name"`
	// Application is the recipe/application name.
	Application string `json:"application"`
	// Domain is the scientific domain label.
	Domain string `json:"domain"`
	// Runtime system the instance was executed on (pegasus, nextflow,
	// knative, ...).
	RuntimeSystem string `json:"runtimeSystem,omitempty"`
	// Workflow is the instance's task graph.
	Workflow *wfformat.Workflow `json:"workflow"`
}

// Validate checks the instance and its embedded workflow.
func (in *Instance) Validate() error {
	if in.Name == "" {
		return fmt.Errorf("wfinstances: instance missing name")
	}
	if in.Workflow == nil {
		return fmt.Errorf("wfinstances: instance %q missing workflow", in.Name)
	}
	if err := in.Workflow.Validate(); err != nil {
		return fmt.Errorf("wfinstances: instance %q: %w", in.Name, err)
	}
	return nil
}

// Repository holds instances grouped by application, the WfInstances
// collection.
type Repository struct {
	byName map[string]*Instance
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byName: make(map[string]*Instance)}
}

// Add validates and stores an instance; duplicate names are rejected.
func (r *Repository) Add(in *Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if _, dup := r.byName[in.Name]; dup {
		return fmt.Errorf("wfinstances: duplicate instance %q", in.Name)
	}
	if in.Domain == "" {
		in.Domain = domainFor[in.Application]
		if in.Domain == "" {
			in.Domain = DomainOther
		}
	}
	r.byName[in.Name] = in
	return nil
}

// Len returns the number of stored instances.
func (r *Repository) Len() int { return len(r.byName) }

// Get returns the named instance, or nil.
func (r *Repository) Get(name string) *Instance { return r.byName[name] }

// Names returns all instance names, sorted.
func (r *Repository) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByApplication returns instances of one application, sorted by name.
func (r *Repository) ByApplication(app string) []*Instance {
	return r.filter(func(in *Instance) bool { return in.Application == app })
}

// ByDomain returns instances of one domain, sorted by name.
func (r *Repository) ByDomain(domain string) []*Instance {
	return r.filter(func(in *Instance) bool { return in.Domain == domain })
}

func (r *Repository) filter(keep func(*Instance) bool) []*Instance {
	var out []*Instance
	for _, n := range r.Names() {
		if in := r.byName[n]; keep(in) {
			out = append(out, in)
		}
	}
	return out
}

// Applications returns application -> instance count.
func (r *Repository) Applications() map[string]int {
	out := make(map[string]int)
	for _, in := range r.byName {
		out[in.Application]++
	}
	return out
}

// Save writes every instance as <dir>/<name>.json.
func (r *Repository) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, n := range r.Names() {
		data, err := json.MarshalIndent(r.byName[n], "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, n+".json"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Load reads every *.json instance in dir into the repository.
func (r *Repository) Load(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		var in Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return fmt.Errorf("wfinstances: %s: %w", e.Name(), err)
		}
		if err := r.Add(&in); err != nil {
			return err
		}
	}
	return nil
}

// Collect populates the repository with synthetic "execution logs": one
// instance per recipe per size, the stand-in for WfInstances' curated
// real-world collection (which is proprietary to each facility).
func Collect(r *Repository, sizes []int, seed int64) error {
	for _, rec := range recipes.All() {
		for _, size := range sizes {
			n := size
			if n < rec.MinTasks() {
				n = rec.MinTasks()
			}
			w, err := rec.Generate(n, seededRand(seed, rec.Name(), size))
			if err != nil {
				return err
			}
			in := &Instance{
				Name:          fmt.Sprintf("%s-testbed-%d-%d", rec.Name(), size, seed),
				Application:   rec.Name(),
				RuntimeSystem: "knative",
				Workflow:      w,
			}
			if err := r.Add(in); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary aggregates structural statistics over a set of instances —
// the per-application tables WfInstances publishes.
type Summary struct {
	Application   string
	Domain        string
	Instances     int
	MeanTasks     float64
	MeanPhases    float64
	MeanMaxWidth  float64
	FunctionTypes []string
}

// Summarize computes per-application summaries over the repository.
func Summarize(r *Repository) ([]Summary, error) {
	apps := make([]string, 0)
	for app := range r.Applications() {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	var out []Summary
	for _, app := range apps {
		insts := r.ByApplication(app)
		s := Summary{Application: app, Instances: len(insts)}
		types := make(map[string]struct{})
		for _, in := range insts {
			s.Domain = in.Domain
			stats, err := in.Workflow.ComputeStats()
			if err != nil {
				return nil, err
			}
			s.MeanTasks += float64(stats.Tasks)
			s.MeanPhases += float64(stats.Phases)
			s.MeanMaxWidth += float64(stats.MaxPhaseWidth)
			for c := range stats.Categories {
				types[c] = struct{}{}
			}
		}
		n := float64(len(insts))
		s.MeanTasks /= n
		s.MeanPhases /= n
		s.MeanMaxWidth /= n
		for c := range types {
			s.FunctionTypes = append(s.FunctionTypes, c)
		}
		sort.Strings(s.FunctionTypes)
		out = append(out, s)
	}
	return out, nil
}

// Signature is WfChef's structural fingerprint of a workflow: the
// features that identify its application pattern independent of size.
type Signature struct {
	Phases         int
	WidthRatio     float64 // max phase width / tasks
	TypeCount      int
	PhaseProfile   []float64 // normalized widths, resampled to 8 buckets
	TasksPerType   float64
	RootsFraction  float64
	LeavesFraction float64
}

// SignatureOf fingerprints a workflow.
func SignatureOf(w *wfformat.Workflow) (*Signature, error) {
	stats, err := w.ComputeStats()
	if err != nil {
		return nil, err
	}
	g, err := w.Graph()
	if err != nil {
		return nil, err
	}
	sig := &Signature{
		Phases:       stats.Phases,
		TypeCount:    len(stats.Categories),
		TasksPerType: float64(stats.Tasks) / float64(len(stats.Categories)),
	}
	if stats.Tasks > 0 {
		sig.WidthRatio = float64(stats.MaxPhaseWidth) / float64(stats.Tasks)
		sig.RootsFraction = float64(len(g.Roots())) / float64(stats.Tasks)
		sig.LeavesFraction = float64(len(g.Leaves())) / float64(stats.Tasks)
	}
	sig.PhaseProfile = resample(stats.PhaseWidths, 8, stats.Tasks)
	return sig, nil
}

// resample maps phase widths onto n buckets normalized by total tasks.
func resample(widths []int, n, total int) []float64 {
	out := make([]float64, n)
	if len(widths) == 0 || total == 0 {
		return out
	}
	for i, w := range widths {
		b := i * n / len(widths)
		out[b] += float64(w) / float64(total)
	}
	return out
}

// distance is the L2 distance between signatures, with structural
// scalars weighted alongside the phase profile.
func distance(a, b *Signature) float64 {
	d := 0.0
	diff := func(x, y, weight float64) {
		d += weight * (x - y) * (x - y)
	}
	diff(math.Log1p(float64(a.Phases)), math.Log1p(float64(b.Phases)), 2)
	diff(a.WidthRatio, b.WidthRatio, 4)
	diff(float64(a.TypeCount), float64(b.TypeCount), 0.25)
	diff(a.RootsFraction, b.RootsFraction, 2)
	diff(a.LeavesFraction, b.LeavesFraction, 2)
	for i := range a.PhaseProfile {
		diff(a.PhaseProfile[i], b.PhaseProfile[i], 1)
	}
	return math.Sqrt(d)
}

// Identify matches a workflow instance to the closest known recipe —
// WfChef's pattern detection. It fingerprints the input and compares it
// against reference instances of every recipe at a comparable size.
func Identify(w *wfformat.Workflow) (recipeName string, score float64, err error) {
	sig, err := SignatureOf(w)
	if err != nil {
		return "", 0, err
	}
	size := w.Len()
	best, bestDist := "", math.Inf(1)
	for _, rec := range recipes.All() {
		n := size
		if n < rec.MinTasks() {
			n = rec.MinTasks()
		}
		ref, err := rec.Generate(n, seededRand(99, rec.Name(), n))
		if err != nil {
			return "", 0, err
		}
		refSig, err := SignatureOf(ref)
		if err != nil {
			return "", 0, err
		}
		if d := distance(sig, refSig); d < bestDist {
			best, bestDist = rec.Name(), d
		}
	}
	return best, bestDist, nil
}
