package wfinstances

import (
	"hash/fnv"
	"math/rand"
)

// seededRand derives a deterministic RNG from a seed plus labels, so
// reference instances are stable across runs.
func seededRand(seed int64, name string, size int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64()) ^ int64(size)<<17))
}
