package wfinstances

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"wfserverless/internal/recipes"
	"wfserverless/internal/wfformat"
)

func sampleInstance(t *testing.T, app string, size int) *Instance {
	t.Helper()
	rec, err := recipes.ForName(app)
	if err != nil {
		t.Fatal(err)
	}
	w, err := rec.Generate(size, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{Name: app + "-test", Application: app, Workflow: w}
}

func TestAddValidates(t *testing.T) {
	r := NewRepository()
	if err := r.Add(&Instance{Name: "", Workflow: nil}); err == nil {
		t.Fatal("empty instance accepted")
	}
	bad := &Instance{Name: "x", Workflow: wfformat.New("w")}
	bad.Workflow.AddTask(&wfformat.Task{Name: "t", Type: "weird", Cores: 1})
	if err := r.Add(bad); err == nil {
		t.Fatal("invalid workflow accepted")
	}
	in := sampleInstance(t, "blast", 20)
	if err := r.Add(in); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(in); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestDomainInferred(t *testing.T) {
	r := NewRepository()
	for app, want := range map[string]string{
		"blast":      DomainBioinformatics,
		"cycles":     DomainAgroecosystems,
		"seismology": DomainSeismology,
	} {
		in := sampleInstance(t, app, 30)
		if err := r.Add(in); err != nil {
			t.Fatal(err)
		}
		if in.Domain != want {
			t.Errorf("%s domain = %q, want %q", app, in.Domain, want)
		}
	}
	if got := len(r.ByDomain(DomainBioinformatics)); got != 1 {
		t.Fatalf("bioinformatics instances = %d", got)
	}
}

func TestCollectAndSummarize(t *testing.T) {
	r := NewRepository()
	if err := Collect(r, []int{30, 60}, 1); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 14 {
		t.Fatalf("collected %d instances, want 14", r.Len())
	}
	apps := r.Applications()
	for _, name := range recipes.Names() {
		if apps[name] != 2 {
			t.Fatalf("app %s has %d instances", name, apps[name])
		}
	}
	sums, err := Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 7 {
		t.Fatalf("summaries = %d", len(sums))
	}
	for _, s := range sums {
		if s.MeanTasks < 20 || s.MeanPhases < 2 || len(s.FunctionTypes) == 0 {
			t.Fatalf("degenerate summary: %+v", s)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := NewRepository()
	if err := Collect(r, []int{20}, 3); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "instances")
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository()
	if err := r2.Load(dir); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Names(), r2.Names()) {
		t.Fatalf("names differ: %v vs %v", r.Names(), r2.Names())
	}
	for _, n := range r.Names() {
		if !reflect.DeepEqual(r.Get(n).Workflow, r2.Get(n).Workflow) {
			t.Fatalf("instance %s changed in round trip", n)
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	r := NewRepository()
	if err := r.Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestSignatureOf(t *testing.T) {
	in := sampleInstance(t, "blast", 100)
	sig, err := SignatureOf(in.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Phases != 3 {
		t.Fatalf("phases = %d", sig.Phases)
	}
	if sig.WidthRatio < 0.9 {
		t.Fatalf("blast width ratio = %v, want ~0.97", sig.WidthRatio)
	}
	total := 0.0
	for _, v := range sig.PhaseProfile {
		total += v
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("profile does not sum to 1: %v", total)
	}
}

// TestIdentifyRecognizesAllRecipes is the WfChef property: an instance
// generated from a recipe (with a different seed and size than the
// references) must be identified as that recipe.
func TestIdentifyRecognizesAllRecipes(t *testing.T) {
	for _, rec := range recipes.All() {
		for _, size := range []int{40, 150} {
			n := size
			if n < rec.MinTasks() {
				n = rec.MinTasks()
			}
			w, err := rec.Generate(n, rand.New(rand.NewSource(777)))
			if err != nil {
				t.Fatal(err)
			}
			got, score, err := Identify(w)
			if err != nil {
				t.Fatal(err)
			}
			if got != rec.Name() {
				t.Errorf("size %d: identified %s as %s (score %.3f)", size, rec.Name(), got, score)
			}
		}
	}
}

func TestIdentifyHandlesUnseenShape(t *testing.T) {
	// A plain chain is none of the recipes; Identify must still return
	// some nearest recipe without error.
	w := wfformat.New("chain")
	prev := ""
	for i := 0; i < 10; i++ {
		name := "step_" + string(rune('a'+i))
		task := &wfformat.Task{
			Name: name, Type: wfformat.TypeCompute, Cores: 1, ID: name, Category: "step",
			Command: wfformat.Command{Program: "wfbench", Arguments: []wfformat.Argument{{
				Name: name, PercentCPU: 0.5, CPUWork: 10,
				Out: map[string]int64{name + "_out": 1},
			}}},
			Files: []wfformat.File{{Link: wfformat.LinkOutput, Name: name + "_out", SizeInBytes: 1}},
		}
		if prev != "" {
			task.Files = append(task.Files, wfformat.File{Link: wfformat.LinkInput, Name: prev + "_out", SizeInBytes: 1})
		}
		w.AddTask(task)
		if prev != "" {
			w.Link(prev, name)
		}
		prev = name
	}
	name, _, err := Identify(w)
	if err != nil || name == "" {
		t.Fatalf("Identify failed on unseen shape: %v %q", err, name)
	}
}
