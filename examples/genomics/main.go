// Genomics: the paper's group-1 story. Dense bioinformatics workflows
// (Blast, BWA) concentrate hundreds of identical functions in one phase;
// executed on serverless they run somewhat slower (cold starts and
// autoscaling ramp-up) but release their resources the moment the burst
// ends, cutting time-averaged CPU and memory dramatically versus the
// always-on local-container baseline.
//
//	go run ./examples/genomics
package main

import (
	"context"
	"fmt"
	"log"

	"wfserverless/internal/experiments"
	"wfserverless/internal/wfgen"
)

func main() {
	tn := experiments.DefaultTunables()
	fmt.Println("Group-1 genomics workflows: serverless (Kn10wNoPM) vs local containers (LC10wNoPM)")
	fmt.Printf("%-8s %6s | %12s %12s | %9s %9s | %9s %9s\n",
		"workflow", "tasks", "kn_time_s", "lc_time_s", "kn_cpu", "lc_cpu", "kn_memGB", "lc_memGB")

	for _, recipe := range []string{"blast", "bwa"} {
		for _, size := range []int{60, 200} {
			w, err := wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: size, Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			knSpec, _ := experiments.ByID(experiments.Kn10wNoPM)
			lcSpec, _ := experiments.ByID(experiments.LC10wNoPM)
			kn, err := experiments.RunWorkflow(context.Background(), knSpec, w, tn)
			if err != nil {
				log.Fatal(err)
			}
			lc, err := experiments.RunWorkflow(context.Background(), lcSpec, w, tn)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %6d | %12.1f %12.1f | %9.1f %9.1f | %9.2f %9.2f\n",
				recipe, w.Len(), kn.MakespanS, lc.MakespanS,
				kn.MeanCPUCores, lc.MeanCPUCores, kn.MeanMemGB, lc.MeanMemGB)
			fmt.Printf("%-8s        -> serverless %.2fx slower, CPU -%.0f%%, memory -%.0f%%, %d cold starts\n",
				"", kn.MakespanS/lc.MakespanS,
				100*(1-kn.MeanCPUCores/lc.MeanCPUCores),
				100*(1-kn.MeanMemGB/lc.MeanMemGB), kn.ColdStarts)
		}
	}
	fmt.Println("\nDense single-burst workflows trade a modest slowdown for most of the")
	fmt.Println("baseline's provisioned CPU and resident memory — the paper's headline result.")
}
