// Hybrid: the paper's future-work proposal — "the optimal strategy for
// complex workflows might be combining executions on serverless and
// bare-metal local containers for different tasks or groups of tasks".
// This example provisions BOTH platforms in one session and maps each
// function to a platform by its category: the dense, identical-function
// burst goes to serverless (where it saves resources) while the
// latency-sensitive serial stages run on warm local containers.
//
//	go run ./examples/hybrid
package main

import (
	"context"
	"fmt"
	"log"

	"wfserverless/internal/core"
	"wfserverless/internal/experiments"
	"wfserverless/internal/metrics"
	"wfserverless/internal/wfformat"
)

func main() {
	tn := experiments.DefaultTunables()
	knSpec, _ := experiments.ByID(experiments.Kn10wNoPM)
	cfg, err := experiments.SessionConfig(knSpec, tn)
	if err != nil {
		log.Fatal(err)
	}
	// A small always-on container pool for the serial stages, alongside
	// the autoscaling serverless platform.
	cfg.Secondary = &core.PlatformConfig{
		Kind:              core.KindLocal,
		Workers:           4,
		Containers:        2,
		CPUsPerContainer:  2,
		PodOverheadMem:    tn.PodOverheadMem,
		WorkerOverheadMem: tn.WorkerOverheadMem,
		PodOverheadCPU:    tn.PodOverheadCPU,
		InputWait:         tn.InputWait,
	}
	session, err := core.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	fmt.Printf("serverless at %s, local containers at %s\n\n", session.URL(), session.SecondaryURL())

	w, err := session.GenerateWorkflow("blast", 150, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Serial pre/post-processing stays local; the blastall burst is
	// serverless.
	pick := func(t *wfformat.Task) string {
		if t.Category == "blastall" {
			return core.KindKnative
		}
		return core.KindLocal
	}

	if err := session.StartSampling(); err != nil {
		log.Fatal(err)
	}
	res, err := session.RunHybrid(context.Background(), w, pick)
	session.StopSampling()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid %s: makespan %.1f s nominal\n", res.Workflow, res.Makespan)
	fmt.Printf("  serverless handled %d invocations (%d cold starts)\n",
		session.Knative().Requests(), session.Knative().ColdStarts())
	fmt.Printf("  local containers handled %d invocations\n", session.LocalRuntime().Requests())
	s := session.Sampler()
	fmt.Printf("  mean provisioned CPU %.1f cores, mean resident memory %.2f GB, mean power %.1f W\n",
		s.MeanOf(metrics.MetricCPUReserved),
		s.MeanOf(metrics.MetricMemUsed)/float64(1<<30),
		s.MeanOf(metrics.MetricPower))
	fmt.Println("\nThe serial split/cat stages never pay a cold start, while the burst")
	fmt.Println("rides the autoscaler and releases its resources afterwards.")
}
