// Multiphase: the paper's group-2 story. Cycles and Epigenomics spread
// their functions over many phases with diverse function types. Phases
// arrive steadily, so serverless pods stay warm between phases — few
// cold starts after the first phase — and the execution-time gap versus
// local containers narrows, while the resource savings remain.
//
//	go run ./examples/multiphase
package main

import (
	"context"
	"fmt"
	"log"

	"wfserverless/internal/experiments"
	"wfserverless/internal/wfgen"
)

func main() {
	tn := experiments.DefaultTunables()

	fmt.Println("Group comparison at 120 tasks: serverless slowdown vs local containers")
	fmt.Printf("%-12s %6s %7s | %10s %11s %11s\n",
		"workflow", "group", "phases", "time_ratio", "cold_starts", "cpu_red%")

	for _, recipe := range []string{"blast", "seismology", "cycles", "epigenomics"} {
		w, err := wfgen.Generate(wfgen.Spec{Recipe: recipe, NumTasks: 120, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		phases, err := w.Phases()
		if err != nil {
			log.Fatal(err)
		}
		knSpec, _ := experiments.ByID(experiments.Kn10wNoPM)
		lcSpec, _ := experiments.ByID(experiments.LC10wNoPM)
		kn, err := experiments.RunWorkflow(context.Background(), knSpec, w, tn)
		if err != nil {
			log.Fatal(err)
		}
		lc, err := experiments.RunWorkflow(context.Background(), lcSpec, w, tn)
		if err != nil {
			log.Fatal(err)
		}
		group := 1
		if recipe == "cycles" || recipe == "epigenomics" {
			group = 2
		}
		fmt.Printf("%-12s %6d %7d | %10.2f %11d %11.1f\n",
			recipe, group, len(phases), kn.MakespanS/lc.MakespanS, kn.ColdStarts,
			100*(1-kn.MeanCPUCores/lc.MeanCPUCores))
	}

	fmt.Println("\nGroup-2 workflows (cycles, epigenomics) show the narrower gap: after the")
	fmt.Println("first phase their pods stay warm across the steady phase cadence, so the")
	fmt.Println("cold-start tax is paid once instead of at every burst.")
}
