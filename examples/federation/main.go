// Federation: the paper's future-work "multi-cluster invocation
// scenarios" (Section VII). Two independent serverless clusters — each
// with its own nodes and autoscaler, sharing only the drive — sit behind
// a federation router that the workflow manager targets like a single
// platform. The dense Blast burst spreads across both clusters, halving
// the per-cluster scaling pressure.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"

	"wfserverless/internal/cluster"
	"wfserverless/internal/federation"
	"wfserverless/internal/serverless"
	"wfserverless/internal/sharedfs"
	"wfserverless/internal/translator"
	"wfserverless/internal/wfgen"
	"wfserverless/internal/wfm"
)

const timeScale = 0.02

func startCluster(name string, drive sharedfs.Drive) (*serverless.Platform, error) {
	clus := cluster.New(cluster.NewNode(cluster.NodeSpec{
		Name: name, Cores: 48, MemBytes: 192 << 30, Packages: 2,
		IdleWatts: 120, MaxWatts: 520,
	}))
	p, err := serverless.New(serverless.Options{
		Cluster:           clus,
		Drive:             drive,
		TimeScale:         timeScale,
		ColdStart:         2,
		AutoscalePeriod:   1,
		StableWindow:      6,
		PodOverheadMem:    80 << 20,
		WorkerOverheadMem: 64 << 20,
		InputWait:         30,
	})
	if err != nil {
		return nil, err
	}
	if _, err := p.Start(); err != nil {
		return nil, err
	}
	err = p.Apply(serverless.ServiceConfig{
		Name: "wfbench", Workers: 10,
		CPURequestPerWorker: 0.5, MemRequestPerWorker: 64 << 20,
	})
	if err != nil {
		p.Stop()
		return nil, err
	}
	return p, nil
}

func main() {
	drive := sharedfs.NewMem()
	east, err := startCluster("east", drive)
	if err != nil {
		log.Fatal(err)
	}
	defer east.Stop()
	west, err := startCluster("west", drive)
	if err != nil {
		log.Fatal(err)
	}
	defer west.Stop()

	router, err := federation.New(federation.RoundRobin,
		federation.Member{Name: "east", Platform: east},
		federation.Member{Name: "west", Platform: west},
	)
	if err != nil {
		log.Fatal(err)
	}
	url, err := router.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer router.Stop()
	fmt.Printf("federation router at %s over clusters east + west\n\n", url)

	w, err := wfgen.Generate(wfgen.Spec{Recipe: "blast", NumTasks: 200, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	kn, err := translator.Knative(w, translator.KnativeOptions{IngressURL: url, Workdir: "shared"})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := wfm.New(wfm.Options{
		Drive: drive, TimeScale: timeScale, PhaseDelay: 1, InputWait: 30, MaxParallel: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mgr.Run(context.Background(), kn)
	if err != nil {
		log.Fatal(err)
	}

	sent := router.Sent()
	fmt.Printf("workflow %s: makespan %.1f s nominal\n", res.Workflow, res.Makespan)
	fmt.Printf("  east served %d invocations (%d cold starts)\n", east.Requests(), east.ColdStarts())
	fmt.Printf("  west served %d invocations (%d cold starts)\n", west.Requests(), west.ColdStarts())
	fmt.Printf("  router split: %v\n", sent)
	fmt.Println("\nThe burst is shared, so each cluster scales to roughly half the pods a")
	fmt.Println("single cluster would need — the multi-cluster direction of Section VII.")
}
