// Quickstart: generate a scientific workflow with the WfCommons-derived
// recipes, deploy WfBench as a Service on the in-process Knative-like
// platform, execute the workflow through the serverless workflow
// manager, and print the measured execution time and resource usage.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"wfserverless/internal/core"
	"wfserverless/internal/experiments"
	"wfserverless/internal/metrics"
	"wfserverless/internal/wfm"
)

func main() {
	// The paper's preferred serverless setup: Kn10wNoPM — 10 workers
	// per pod, no persistent memory (Section V-B).
	spec, err := experiments.ByID(experiments.Kn10wNoPM)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := experiments.SessionConfig(spec, experiments.DefaultTunables())
	if err != nil {
		log.Fatal(err)
	}
	session, err := core.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	fmt.Printf("serverless platform up at %s (WfBench service applied)\n\n", session.URL())

	// Generate a 100-task Blast workflow and run it, sampled at the
	// paper's 1 Hz (nominal).
	if err := session.StartSampling(); err != nil {
		log.Fatal(err)
	}
	res, err := session.RunRecipe(context.Background(), "blast", 100, 42)
	session.StopSampling()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow:   %s\n", res.Workflow)
	fmt.Printf("functions:  %d across %d phases\n", len(res.Tasks)-2, len(res.Phases)-2)
	fmt.Printf("makespan:   %.1f s nominal (%v wall at the experiment time scale)\n\n",
		res.Makespan, res.Wall)

	for _, ps := range wfm.PhaseBreakdown(res) {
		fmt.Printf("  phase %-2d  %4d function(s)  span %v\n", ps.Phase, ps.Functions, ps.WallSpan)
	}

	s := session.Sampler()
	fmt.Printf("\ntelemetry (PCP-style 1 Hz sampling):\n")
	fmt.Printf("  power:  %.1f W mean\n", s.MeanOf(metrics.MetricPower))
	fmt.Printf("  cpu:    %.1f cores mean provisioned, %.1f busy\n",
		s.MeanOf(metrics.MetricCPUReserved), s.MeanOf(metrics.MetricCPUUser))
	fmt.Printf("  memory: %.2f GB mean resident\n", s.MeanOf(metrics.MetricMemUsed)/float64(1<<30))
	fmt.Printf("  pods:   %.1f mean, %.0f peak (scale-to-zero after the burst)\n",
		s.MeanOf(metrics.MetricPodsRunning), s.MaxOf(metrics.MetricPodsRunning))
	fmt.Printf("  cold starts: %d\n", session.Knative().ColdStarts())
}
